// Package single exercises replaypurity inside one package: direct and
// transitive effects, the sortedKeys exemption, directive suppression,
// goroutine pruning, method values, interface dispatch, and recursion.
package single

import (
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"
)

type Server struct {
	users map[string]int
	ch    chan int
}

// applyEvent is a replay root by name.
func (s *Server) applyEvent(kind string) {
	_ = time.Now() // want `call to time\.Now`
	s.helper()
	s.clean()
	f := s.viaMethodValue // the reference is the call edge; the effect reports below
	f()
	s.recurse(3)
}

// helper is only reachable through applyEvent; its effects report at
// their own positions because the function is local.
func (s *Server) helper() {
	_ = rand.Int()           // want `call to math/rand\.Int`
	for k := range s.users { // want `range over map`
		_ = k
	}
	_ = sortedKeys(s.users)
	_ = sortedTaskIDs(nil)
}

// sortedKeys helpers are the sanctioned way to iterate a map: the range
// inside them is exempt.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sortedTaskIDs proves the exemption covers every sorted* spelling, not
// just sortedKeys (regression: codec.go's generic helper).
func sortedTaskIDs(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// clean iterates deterministically and is not flagged.
func (s *Server) clean() {
	for _, k := range sortedKeys(s.users) {
		s.users[k]++
	}
}

func (s *Server) viaMethodValue() {
	_ = os.Getenv("HOME") // want `environment read os\.Getenv`
}

// recurse proves the traversal terminates on cycles and still surfaces
// effects behind them.
func (s *Server) recurse(n int) {
	if n == 0 {
		_ = runtime.NumCPU() // want `scheduler query runtime\.NumCPU`
		return
	}
	s.recurse(n - 1)
}

// decodeEvent is a replay root by name.
func (s *Server) decodeEvent(b []byte) {
	go s.pump() // want `goroutine spawn`
	//eta2:replaypurity-ok worker is joined before apply returns and mutates no replayed state
	go s.timeSink()
	select { // want `select statement`
	case <-s.ch:
	default:
	}
	_ = time.Now() //eta2:replaypurity-ok metrics timestamp, never enters replayed state
	s.audited()
	for k := range s.users { //eta2:nondeterministic-ok independent per-key reads
		_ = k
	}
}

// pump itself is clean; the unannotated spawn above is the finding.
func (s *Server) pump() {}

// timeSink is impure, but only reachable through the annotated spawn,
// which prunes the subtree.
func (s *Server) timeSink() { _ = time.Now() }

//eta2:replaypurity-ok audited: diagnostics only, output discarded on replay
func (s *Server) audited() {
	_ = time.Now()
	_ = rand.Int()
}

// decodeBinaryEvent is a replay root by name. Function literals belong
// to their enclosing function: the first spawn reports both the spawn
// and the clock read inside the literal; the annotated spawn prunes
// both.
func (s *Server) decodeBinaryEvent(b []byte) {
	go func() { // want `goroutine spawn`
		_ = time.Now() // want `call to time\.Now`
	}()
	//eta2:replaypurity-ok detached trace flush, not replayed state
	go func() {
		_ = time.Now()
	}()
}

// Source dispatches dynamically: every concrete implementation in the
// package is a potential callee.
type Source interface {
	Emit() int
}

type clock struct{}

func (clock) Emit() int { return int(time.Now().UnixNano()) } // want `call to time\.Now`

type pure struct{}

func (pure) Emit() int { return 7 }

// restoreServer is a replay root by name.
func restoreServer(src Source) {
	_ = src.Emit()
}

// notRoot has effects but is unreachable from any root: no findings.
func notRoot() {
	_ = time.Now()
	_ = os.Environ()
}

//eta2:replay-root
func customRoot() {
	_, _ = os.LookupEnv("TZ") // want `environment read os\.LookupEnv`
}
