// Package cross proves summaries propagate across package boundaries:
// the violations live in replay/dep, which is clean in isolation; they
// surface only here, where a replay root reaches them, anchored at the
// local call edge with the path in the message.
package cross

import "replay/dep"

// applyEvent is a replay root by name.
func applyEvent(t dep.Ticker) {
	_ = dep.Pure(1)
	_ = dep.Mid() // want `call into replay/dep\.Mid reaches call to time\.Now .*path replay/cross\.applyEvent -> replay/dep\.Mid -> replay/dep\.Stamp`
	_ = t.Tick()  // want `call into \(replay/dep\.Wall\)\.Tick reaches call to time\.Now`
	_ = dep.Pure(2)
}
