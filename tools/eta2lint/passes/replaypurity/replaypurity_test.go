package replaypurity

import (
	"testing"

	"eta2lint/internal/analysistest"
)

func TestSinglePackage(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "replay/single")
}

// TestCrossPackage analyzes the dependency first (producing its effect
// summary fact) and then the root package, mirroring how cmd/go
// schedules vet units; the dependency's violations surface only at the
// root package's call edges.
func TestCrossPackage(t *testing.T) {
	analysistest.RunDeps(t, "testdata", Analyzer, "replay/dep", "replay/cross")
}

// TestDepAloneIsClean: a package with impure helpers but no replay
// roots reports nothing.
func TestDepAloneIsClean(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "replay/dep")
}
