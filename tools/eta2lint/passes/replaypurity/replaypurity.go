// Package replaypurity proves at compile time that WAL replay is
// deterministic: every function transitively reachable from a replay or
// apply root must not read wall-clock time, draw randomness, iterate a
// map outside sortedKeys helpers, spawn goroutines, consult the
// environment or scheduler, or select over channels. Bit-identical
// replay is the foundation of the journal/snapshot design (PR 2) and of
// follower convergence (PR 7) — one time.Now or map-order dependency in
// the apply path silently forks replicas.
//
// Roots are recognized by name (applyEvent, decodeEvent,
// decodeBinaryEvent, restoreServer, decodeState*, applyRecord) or by an
// explicit `//eta2:replay-root` directive on the function. The analysis
// is inter-procedural across packages: effect summaries travel as
// analysis facts (see internal/callgraph), so a violation buried two
// modules deep is reported at the local call edge that reaches it, with
// the full path in the message.
//
// Escape hatch, for audited sites only:
//
//	//eta2:replaypurity-ok <why this cannot affect replayed state>
//
// On a `go` statement the directive additionally prunes the spawned
// subtree — the annotation vouches for the detached work. On a function
// declaration it exempts the whole function and everything it calls.
// The pre-existing //eta2:nondeterministic-ok map-range annotations are
// honored too.
package replaypurity

import (
	"go/ast"
	"sort"
	"strings"

	"eta2lint/internal/analysis"
	"eta2lint/internal/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name:        "replaypurity",
	Doc:         "forbid nondeterminism (time, rand, map order, goroutines, env, select) in code reachable from replay/apply roots",
	Suppressors: []string{"nondeterministic-ok"},
	Run:         run,
}

// rootNames are the replay/apply entry points recognized by name.
var rootNames = map[string]bool{
	"applyEvent":        true,
	"decodeEvent":       true,
	"decodeBinaryEvent": true,
	"restoreServer":     true,
	"applyRecord":       true,
}

func isRoot(decl *ast.FuncDecl) bool {
	name := decl.Name.Name
	if rootNames[name] || strings.HasPrefix(name, "decodeState") {
		return true
	}
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if n, ok := analysis.ParseDirective(c.Text); ok && n == "replay-root" {
				return true
			}
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	g, err := callgraph.Analyze(pass)
	if err != nil {
		return err
	}

	var roots []string
	for name, decl := range g.LocalDecls {
		if isRoot(decl) && g.Func(name) != nil {
			roots = append(roots, name)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	sort.Strings(roots)

	// BFS from the roots with parent tracking, so a violation found deep
	// in the graph can name the chain that reaches it.
	from := make(map[string]edgeIn)
	rootOf := make(map[string]string)
	var queue []string
	for _, r := range roots {
		if _, seen := rootOf[r]; seen {
			continue
		}
		rootOf[r] = r
		queue = append(queue, r)
	}

	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fs := g.Func(fn)
		if fs == nil {
			continue // outside the analysis universe (stdlib etc.)
		}
		for _, eff := range fs.Effects {
			report(pass, g, fn, eff, from, rootOf)
		}
		for _, c := range fs.Calls {
			for _, target := range expand(g, c.Callee) {
				if _, seen := rootOf[target]; seen {
					continue
				}
				rootOf[target] = rootOf[fn]
				from[target] = edgeIn{parent: fn, call: c}
				queue = append(queue, target)
			}
		}
	}
	return nil
}

// expand resolves an interface method through the graph's binds; a
// concrete callee resolves to itself.
func expand(g *callgraph.Graph, callee string) []string {
	if impls := g.Impls(callee); len(impls) > 0 {
		if g.Func(callee) != nil {
			return append([]string{callee}, impls...)
		}
		return impls
	}
	return []string{callee}
}

// edgeIn records how BFS first reached a function: the calling function
// and the call edge taken.
type edgeIn struct {
	parent string
	call   callgraph.Call
}

// report places the diagnostic. A local effect reports at its own
// position; an effect inside an imported package reports at the last
// local call site on the chain, with the path and the remote position
// spelled out in the message.
func report(pass *analysis.Pass, g *callgraph.Graph, fn string, eff callgraph.Effect,
	from map[string]edgeIn, rootOf map[string]string) {

	root := rootOf[fn]
	if eff.TokPos.IsValid() {
		pass.Reportf(eff.TokPos, "replay determinism: %s in %s (reachable from replay root %s)",
			eff.Detail, fn, root)
		return
	}
	// Walk back toward the root until a call edge with a real position —
	// the local edge where the chain leaves the package under analysis.
	chain := []string{fn}
	cur := fn
	for {
		in, ok := from[cur]
		if !ok {
			return // effect in an unreachable summary; nothing to anchor on
		}
		chain = append([]string{in.parent}, chain...)
		if in.call.TokPos.IsValid() {
			pass.Reportf(in.call.TokPos,
				"replay determinism: call into %s reaches %s at %s (path %s)",
				chain[1], eff.Detail, eff.Pos, strings.Join(chain, " -> "))
			return
		}
		cur = in.parent
	}
}
