// Package eta2srv exercises journalfirst against a Server shaped like
// the real one: tracked event-sourced fields plus durability bookkeeping.
package eta2srv

import "sync"

type event struct {
	Name string
	Day  int
}

type Server struct {
	mu      sync.RWMutex
	users   map[string]int
	day     int
	lastLSN uint64 // durability bookkeeping: not event-sourced
}

func (s *Server) journalBuffered(ev event) (uint64, error) {
	s.lastLSN++ // untracked field: no journal required
	return s.lastLSN, nil
}

func (s *Server) journalBufferedPayload(p []byte) (uint64, error) {
	s.lastLSN++
	return s.lastLSN, nil
}

// AddUser journals before applying: compliant.
func (s *Server) AddUser(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.journalBuffered(event{Name: name}); err != nil {
		return err
	}
	s.users[name] = 1
	s.day++
	return nil
}

// BadAddUser applies the mutation before buffering the record: a crash
// between the two loses the user on replay.
func (s *Server) BadAddUser(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.users[name] = 1 // want "Server.users assigned before the event is journaled"
	_, err := s.journalBuffered(event{Name: name})
	return err
}

// NeverJournals mutates tracked state without any journal call.
func (s *Server) NeverJournals() {
	s.mu.Lock()
	s.day++ // want "Server.day assigned without journaling the event"
	s.mu.Unlock()
}

// Bookkeeping only touches untracked fields: no journal needed.
func (s *Server) Bookkeeping() {
	s.mu.Lock()
	s.lastLSN = 0
	s.mu.Unlock()
}

// applyEvent is the replay path: events are already journaled.
//
//eta2:journalfirst-ok replay applies events that are already in the journal
func (s *Server) applyEvent(ev event) {
	s.users[ev.Name] = 1
	s.day = ev.Day
}

// PayloadPath journals the pre-encoded payload first: compliant.
func (s *Server) PayloadPath(p []byte, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.journalBufferedPayload(p); err != nil {
		return err
	}
	s.users[name] = 1
	return nil
}
