package journalfirst

import (
	"testing"

	"eta2lint/internal/analysistest"
)

func TestJournalFirst(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "eta2srv")
}
