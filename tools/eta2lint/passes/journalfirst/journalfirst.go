// Package journalfirst enforces the write-ahead rule from the durable
// event log design (PR 2): a Server method that mutates event-sourced
// state must buffer the journal record (journalBuffered /
// journalBufferedPayload) BEFORE assigning the tracked fields, so a
// crash between the two replays the mutation instead of losing it.
//
// Replay/restore paths, which by construction apply already-journaled
// events, are exempted per function:
//
//	//eta2:journalfirst-ok <why this path must not journal>
package journalfirst

import (
	"go/ast"
	"go/token"
	"go/types"

	"eta2lint/internal/analysis"
)

// tracked is the event-sourced Server state: every field whose value is
// reconstructed by WAL replay. Derived caches and durability bookkeeping
// (journal, lastLSN, snapLSN, ...) are deliberately absent.
var tracked = map[string]bool{
	"users":        true,
	"userOrder":    true,
	"tasks":        true,
	"domainOf":     true,
	"pending":      true,
	"observations": true,
	"truths":       true,
	"day":          true,
	"store":        true,
	"vectors":      true,
	"itemToTask":   true,
}

var Analyzer = &analysis.Analyzer{
	Name: "journalfirst",
	Doc:  "Server mutations must buffer the WAL record before assigning tracked state",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	server := pass.Pkg.Scope().Lookup("Server")
	if server == nil {
		return nil
	}
	if _, ok := server.Type().Underlying().(*types.Struct); !ok {
		return nil
	}
	c := &checker{pass: pass, server: server}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || !c.isServerRecv(fn) {
				continue
			}
			if pass.FuncSuppressed(fn) {
				continue
			}
			c.checkFunc(fn)
		}
	}
	return nil
}

type checker struct {
	pass   *analysis.Pass
	server types.Object
}

func (c *checker) isServerRecv(fn *ast.FuncDecl) bool {
	return len(fn.Recv.List) == 1 && c.isServerExpr(fn.Recv.List[0].Type)
}

func (c *checker) isServerExpr(e ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == c.server
}

func (c *checker) checkFunc(fn *ast.FuncDecl) {
	// Position of the first journal-buffer call anywhere in the method
	// (function literals included: the allocation env closure journals
	// inline, and its buffered write precedes its state write).
	journalPos := token.NoPos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !c.isServerExpr(sel.X) {
			return true
		}
		if sel.Sel.Name == "journalBuffered" || sel.Sel.Name == "journalBufferedPayload" {
			if !journalPos.IsValid() || call.Pos() < journalPos {
				journalPos = call.Pos()
			}
		}
		return true
	})

	report := func(pos token.Pos, field string) {
		if !journalPos.IsValid() {
			c.pass.Reportf(pos, "Server.%s assigned without journaling the event (method never calls journalBuffered); journal first or annotate //eta2:journalfirst-ok", field)
			return
		}
		c.pass.Reportf(pos, "Server.%s assigned before the event is journaled at %s; a crash here loses the mutation",
			field, c.pass.Fset.Position(journalPos))
	}

	check := func(lhs ast.Expr) {
		pos := lhs.Pos()
		for {
			if ix, ok := lhs.(*ast.IndexExpr); ok {
				lhs = ix.X
				continue
			}
			break
		}
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || !c.isServerExpr(sel.X) || !tracked[sel.Sel.Name] {
			return
		}
		if journalPos.IsValid() && pos > journalPos {
			return
		}
		report(pos, sel.Sel.Name)
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(s.X)
		}
		return true
	})
}
