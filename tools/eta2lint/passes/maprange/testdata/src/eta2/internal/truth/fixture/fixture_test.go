package fixture

// Test files are exempt: assertion helpers may iterate maps freely.
func iterateInTest(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
