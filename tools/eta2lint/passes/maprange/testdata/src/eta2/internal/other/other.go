// Package other is outside the numeric package set: map iteration is
// allowed (ordinary server plumbing does not feed float accumulators).
package other

func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
