// Package fixture exercises maprange inside a numeric package path.
package fixture

import "sort"

func sum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "range over map in numeric package"
		total += v
	}
	return total
}

func sumKeyed(m map[string]float64) float64 {
	total := 0.0
	// Ranging over sorted keys is the approved pattern: the range is over
	// a slice, so it must NOT be flagged.
	for _, k := range sortedKeys(m) {
		total += m[k]
	}
	return total
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //eta2:nondeterministic-ok collect-then-sort: the sort below fixes the order
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func scale(m map[string]float64, f float64) {
	//eta2:nondeterministic-ok independent per-key write: order cannot matter
	for k := range m {
		m[k] *= f
	}
}

type wrapped map[int]int

func iterateNamedMapType(w wrapped) {
	for range w { // want "range over map in numeric package"
	}
}

func sliceAndChannelAreFine(xs []float64, ch chan int) {
	for range xs {
	}
	for range ch {
	}
}
