package maprange

import (
	"testing"

	"eta2lint/internal/analysistest"
)

func TestNumericPackage(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "eta2/internal/truth/fixture")
}

func TestNonNumericPackageIsExempt(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "eta2/internal/other")
}
