// Package maprange forbids `range` over maps in the numeric packages of
// eta2 (internal/truth, internal/allocation, internal/cluster,
// internal/core, internal/baselines). Map iteration order is randomized
// per run; feeding it into float accumulation breaks the bit-identical
// determinism the truth-analysis pipeline guarantees (PR 1). Iterate
// sorted keys instead — `for _, k := range sortedKeys(m)` ranges over a
// slice and is not flagged — or, where order provably cannot matter
// (independent per-key writes), annotate the loop:
//
//	//eta2:nondeterministic-ok <why order cannot matter>
package maprange

import (
	"go/ast"
	"go/types"
	"regexp"

	"eta2lint/internal/analysis"
)

// numericPackages matches the import paths under determinism discipline.
var numericPackages = regexp.MustCompile(`(^|/)internal/(truth|allocation|cluster|core|baselines)($|/)`)

var Analyzer = &analysis.Analyzer{
	Name:        "maprange",
	Doc:         "forbid range-over-map in numeric packages (nondeterministic iteration order)",
	Suppressors: []string{"nondeterministic-ok"},
	Run:         run,
}

func run(pass *analysis.Pass) error {
	if !numericPackages.MatchString(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				pass.Reportf(rs.For, "range over map in numeric package: iteration order is nondeterministic; range over sorted keys or annotate //eta2:nondeterministic-ok")
			}
			return true
		})
	}
	return nil
}
