// Package spandiscipline enforces the tracing rules from the
// end-to-end write tracing design (PR 9): every span or trace handle
// obtained from a trace.Start* call must be ended on every path out of
// the function that started it. A started-but-never-ended span stays
// Dur=0 forever — the flight recorder renders it as "still open", the
// fsync-wait breakdowns go missing from /v1/admin/traces, and nobody
// notices until a latency investigation needs exactly that span.
//
// The rule: a variable assigned from a call named Start* whose result
// is a *trace.Trace or *trace.Span must reach a dominating End() —
// either a `defer v.End()` or an `v.End()` call on every path to every
// return — inside the function that started it, unless the handle
// escapes:
//
//   - passed as an argument to another call (the callee owns the End,
//     e.g. journalCommitSpanned closing the fsync-wait span), except
//     trace.NewContext, which is a pure carrier and never ends spans;
//   - returned to the caller;
//   - aliased, stored into a structure, or captured by a nested
//     function literal.
//
// Discarding a Start* result outright is always an error: nothing can
// ever end it.
//
// Because Start* on a nil handle returns nil and every method on a nil
// handle is a no-op, the guarded shape `if v != nil { v.End() }` is a
// complete discharge: on the path where v is nil there is no span to
// end. The walk understands `v != nil` / `v == nil` conditions.
//
// Scope: the packages that own the write path — eta2 itself and
// internal/{httpapi,wal,repl}. Test files are exempt (they routinely
// exercise half-finished traces). Deliberate exceptions are annotated
//
//	//eta2:spandiscipline-ok <why the span intentionally stays open>
//
// per line or per function. The walk is linear and intraprocedural,
// like lockdiscipline; function-literal bodies are analyzed as their
// own scopes.
package spandiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"eta2lint/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "spandiscipline",
	Doc:  "trace.Start* results must be ended on every path (End, defer End, or escape)",
	Run:  run,
}

// scopeRE names the packages under the rule: the root serving package
// and the write-path internals. internal/trace itself is exempt — it
// builds the half-open handles by definition.
var scopeRE = regexp.MustCompile(`^eta2(/internal/(httpapi|wal|repl))?$`)

func run(pass *analysis.Pass) error {
	if !scopeRE.MatchString(pass.Pkg.Path()) {
		return nil
	}
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if pass.FuncSuppressed(fn) {
				continue
			}
			c.checkScope(fn.Name.Name, fn.Body)
			// Function literals are separate scopes: a handle started
			// inside a closure must be ended (or escape) inside it.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					c.checkScope(fn.Name.Name+" (func literal)", lit.Body)
					return false
				}
				return true
			})
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
}

// tracked is one Start* result variable under analysis in a scope.
type tracked struct {
	pos    token.Pos // the Start* call, for reporting
	callee string    // "StartSpan" / "StartRoot"
	name   string    // variable name, for the message
}

// checkScope runs the discipline over one function body. Nested
// function literals are skipped here (run analyzes them separately);
// a tracked handle referenced inside one counts as escaped.
func (c *checker) checkScope(name string, body *ast.BlockStmt) {
	vars := c.collectTracked(body)
	if len(vars) == 0 {
		return
	}
	c.markEscapes(body, vars)
	c.markDeferredEnds(body, vars)
	w := &walker{c: c, vars: vars, reported: make(map[types.Object]bool)}
	open := make(openSet)
	if term := w.walk(body.List, open); !term {
		// Falling off the end of the function is a return too.
		w.reportOpen(open)
	}
}

// collectTracked finds variables assigned from Start* calls and reports
// Start* results that are discarded outright. Nested function literals
// are separate scopes and skipped.
func (c *checker) collectTracked(body *ast.BlockStmt) map[types.Object]*tracked {
	vars := make(map[types.Object]*tracked)
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if callee, ok := c.isStartCall(call); ok {
					c.pass.Reportf(call.Pos(),
						"%s result discarded: the span can never be ended — assign it and End it on every path, or annotate //eta2:spandiscipline-ok", callee)
				}
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return true
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, ok := c.isStartCall(call)
			if !ok {
				return true
			}
			id, ok := s.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				c.pass.Reportf(call.Pos(),
					"%s result discarded: the span can never be ended — assign it and End it on every path, or annotate //eta2:spandiscipline-ok", callee)
				return true
			}
			if obj := c.objFor(id); obj != nil {
				vars[obj] = &tracked{pos: call.Pos(), callee: callee, name: id.Name}
			}
		}
		return true
	})
	return vars
}

// markEscapes removes from vars every handle whose End obligation moves
// elsewhere: call arguments (except the trace.NewContext carrier),
// return values, aliases and stores, composite literals, channel sends,
// address-taking, and capture by a nested function literal.
func (c *checker) markEscapes(body *ast.BlockStmt, vars map[types.Object]*tracked) {
	escape := func(e ast.Node) {
		ast.Inspect(e, func(n ast.Node) bool {
			// A nested carrier call keeps ownership with the starter even
			// in escape position (return trace.NewContext(ctx, t)).
			if call, ok := n.(*ast.CallExpr); ok && c.isCarrierCall(call) {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := c.objFor(id); obj != nil {
					delete(vars, obj)
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			// Captured by a closure: the closure may End it later.
			escape(s)
			return false
		case *ast.CallExpr:
			if c.isCarrierCall(s) {
				// trace.NewContext only threads the handle through a
				// context; the starter still owns the End.
				return true
			}
			for _, arg := range s.Args {
				escape(arg)
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				escape(r)
			}
		case *ast.AssignStmt:
			// Aliasing (x := sp) or storing (s.span = sp): the handle has
			// a second owner. Call results on the RHS are skipped — the
			// CallExpr case escapes their arguments, and a receiver use
			// (sp := tr.StartSpan(...)) is not an escape of tr.
			for _, r := range s.Rhs {
				if _, isCall := r.(*ast.CallExpr); !isCall {
					escape(r)
				}
			}
		case *ast.CompositeLit:
			for _, el := range s.Elts {
				escape(el)
			}
		case *ast.SendStmt:
			escape(s.Value)
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				escape(s.X)
			}
		}
		return true
	})
}

// markDeferredEnds discharges handles with a `defer v.End()`.
func (c *checker) markDeferredEnds(body *ast.BlockStmt, vars map[types.Object]*tracked) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if obj := c.endReceiver(d.Call); obj != nil {
			delete(vars, obj)
		}
		return true
	})
}

// isStartCall reports whether call is a method call named Start* whose
// result is a *Trace or *Span from the trace package.
func (c *checker) isStartCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "Start") {
		return "", false
	}
	t := c.pass.TypesInfo.TypeOf(call)
	if t == nil {
		return "", false
	}
	p, ok := t.(*types.Pointer)
	if !ok {
		return "", false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/trace") {
		return "", false
	}
	if obj.Name() != "Trace" && obj.Name() != "Span" {
		return "", false
	}
	return sel.Sel.Name, true
}

// isCarrierCall recognizes trace.NewContext, the one call that receives
// a handle without taking over its End obligation.
func (c *checker) isCarrierCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NewContext" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := c.pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && strings.HasSuffix(pn.Imported().Path(), "internal/trace")
}

// endReceiver returns the object of v in a call shaped v.End(), nil
// otherwise.
func (c *checker) endReceiver(call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	return c.objFor(id)
}

func (c *checker) objFor(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

// ---- the path walk ------------------------------------------------------

// openSet tracks handles started but not yet ended on the current path.
type openSet map[types.Object]*tracked

func (o openSet) clone() openSet {
	c := make(openSet, len(o))
	for k, v := range o {
		c[k] = v
	}
	return c
}

type walker struct {
	c        *checker
	vars     map[types.Object]*tracked // required (non-escaped, non-deferred) handles
	reported map[types.Object]bool
}

func (w *walker) reportOpen(open openSet) {
	for obj, tk := range open {
		if w.reported[obj] {
			continue
		}
		w.reported[obj] = true
		w.c.pass.Reportf(tk.pos,
			"%s result %s is not ended on every path: add a dominating %s.End() (or defer it) before each return, or annotate //eta2:spandiscipline-ok",
			tk.callee, tk.name, tk.name)
	}
}

// walk threads the open-handle set through a statement list, reporting
// handles still open at a return. Returns whether the list always
// terminates. The merge at a branch join is a union: a handle left open
// on any surviving path is still open.
func (w *walker) walk(stmts []ast.Stmt, open openSet) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if obj := w.c.endReceiver(call); obj != nil {
					delete(open, obj)
				}
			}
		case *ast.AssignStmt:
			if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
				if id, ok := s.Lhs[0].(*ast.Ident); ok {
					if obj := w.c.objFor(id); obj != nil {
						if tk, required := w.vars[obj]; required {
							if call, isCall := s.Rhs[0].(*ast.CallExpr); isCall {
								if _, isStart := w.c.isStartCall(call); isStart {
									open[obj] = tk
								}
							}
						}
					}
				}
			}
		case *ast.ReturnStmt:
			w.reportOpen(open)
			return true
		case *ast.BlockStmt:
			if w.walk(s.List, open) {
				return true
			}
		case *ast.IfStmt:
			thenOpen := open.clone()
			elseOpen := open.clone()
			// `if v != nil { ... }`: on the else path v is nil — Start
			// returned the no-op handle, so there is nothing to end.
			// Symmetrically for `if v == nil`.
			if obj, eq := w.nilCheck(s.Cond); obj != nil {
				if eq {
					delete(thenOpen, obj)
				} else {
					delete(elseOpen, obj)
				}
			}
			thenTerm := w.walk(s.Body.List, thenOpen)
			elseTerm := false
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseTerm = w.walk(e.List, elseOpen)
			case *ast.IfStmt:
				elseTerm = w.walk([]ast.Stmt{e}, elseOpen)
			}
			switch {
			case thenTerm && elseTerm:
				return true
			case thenTerm:
				replace(open, elseOpen)
			case elseTerm:
				replace(open, thenOpen)
			default:
				merged := union(thenOpen, elseOpen)
				replace(open, merged)
			}
		case *ast.ForStmt:
			body := open.clone()
			w.walk(s.Body.List, body)
			replace(open, union(open, body))
		case *ast.RangeStmt:
			body := open.clone()
			w.walk(s.Body.List, body)
			replace(open, union(open, body))
		case *ast.SwitchStmt:
			w.walkCases(s.Body.List, open)
		case *ast.TypeSwitchStmt:
			w.walkCases(s.Body.List, open)
		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				body := open.clone()
				w.walk(cc.(*ast.CommClause).Body, body)
				replace(open, union(open, body))
			}
		case *ast.LabeledStmt:
			if w.walk([]ast.Stmt{s.Stmt}, open) {
				return true
			}
		}
	}
	return false
}

// walkCases merges switch case bodies: a handle open at the end of any
// non-terminating case (or before the switch, if no case runs) stays
// open.
func (w *walker) walkCases(clauses []ast.Stmt, open openSet) {
	out := open.clone()
	for _, cc := range clauses {
		body := open.clone()
		if !w.walk(cc.(*ast.CaseClause).Body, body) {
			replace(out, union(out, body))
		}
	}
	replace(open, out)
}

// nilCheck recognizes `v != nil` (eq=false) and `v == nil` (eq=true)
// over a tracked handle.
func (w *walker) nilCheck(cond ast.Expr) (types.Object, bool) {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return nil, false
	}
	x, y := bin.X, bin.Y
	if isNilIdent(y) {
		// v OP nil
	} else if isNilIdent(x) {
		x = y
	} else {
		return nil, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := w.c.objFor(id)
	if obj == nil {
		return nil, false
	}
	if _, tracked := w.vars[obj]; !tracked {
		return nil, false
	}
	return obj, bin.Op == token.EQL
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func union(a, b openSet) openSet {
	out := a.clone()
	for k, v := range b {
		out[k] = v
	}
	return out
}

// replace rewrites dst in place to equal src (walk threads one map).
func replace(dst, src openSet) {
	for k := range dst {
		if _, ok := src[k]; !ok {
			delete(dst, k)
		}
	}
	for k, v := range src {
		dst[k] = v
	}
}
