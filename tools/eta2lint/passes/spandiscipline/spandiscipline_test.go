package spandiscipline

import (
	"testing"

	"eta2lint/internal/analysistest"
)

func TestSpanDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "eta2")
}

func TestSpanDisciplineOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "eta2/internal/other")
}
