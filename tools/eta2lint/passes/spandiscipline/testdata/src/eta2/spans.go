// Package eta2 exercises spandiscipline against the write-path shapes
// the real server uses.
package eta2

import (
	"context"
	"errors"

	"eta2/internal/trace"
)

var tracer *trace.Tracer

var errBoom = errors.New("boom")

// Straight start → work → End: compliant.
func straightLine(t *trace.Trace) error {
	sp := t.StartSpan("encode")
	work()
	sp.End()
	return nil
}

// Deferred End discharges every path at once: compliant.
func deferredEnd(t *trace.Trace) error {
	sp := t.StartSpan("encode")
	defer sp.End()
	if work() {
		return errBoom
	}
	return nil
}

// The early return leaves the span open.
func earlyReturnLeak(t *trace.Trace) error {
	sp := t.StartSpan("encode") // want "StartSpan result sp is not ended on every path"
	if work() {
		return errBoom
	}
	sp.End()
	return nil
}

// Ending on the error path and the fall-through: compliant.
func bothPathsEnd(t *trace.Trace) error {
	sp := t.StartSpan("encode")
	if work() {
		sp.End()
		return errBoom
	}
	sp.End()
	return nil
}

// Ending in only one arm of an if/else.
func oneArmEnds(t *trace.Trace) error {
	sp := t.StartSpan("encode") // want "StartSpan result sp is not ended on every path"
	if work() {
		sp.End()
	} else {
		work()
	}
	return nil
}

// A discarded handle can never be ended.
func discarded(t *trace.Trace) {
	t.StartSpan("encode") // want "StartSpan result discarded"
}

// Discarding via the blank identifier is the same mistake.
func blankDiscard(t *trace.Trace) {
	_ = t.StartSpan("encode") // want "StartSpan result discarded"
}

// Passing the handle to another call hands over the End obligation —
// the journalCommitSpanned shape.
func escapeByCall(t *trace.Trace) error {
	fsync := t.StartSpan("fsync wait")
	return commitSpanned(1, fsync)
}

// A handle opened conditionally and then passed along: compliant (the
// real addUsersTraced shape).
func conditionalEscape(t *trace.Trace) error {
	var fsync *trace.Span
	if work() {
		fsync = t.StartSpan("fsync wait")
	}
	return commitSpanned(2, fsync)
}

// Returning the handle makes the caller the owner — the
// compactionTrace shape.
func escapeByReturn() *trace.Trace {
	return tracer.StartRoot("compaction", true)
}

// Storing the handle gives it a second owner this walk cannot follow.
type holder struct{ sp *trace.Span }

func escapeByStore(t *trace.Trace, h *holder) {
	sp := t.StartSpan("encode")
	h.sp = sp
}

// Captured by a closure: the closure may End it later.
func escapeByCapture(t *trace.Trace) func() {
	sp := t.StartSpan("encode")
	return func() { sp.End() }
}

// trace.NewContext is a carrier, not an owner: threading the handle
// through a context does not discharge the End obligation...
func carrierThenEnd(ctx context.Context, t *trace.Trace) {
	root := tracer.StartRoot("POST /v1/observations", false)
	_ = trace.NewContext(ctx, root)
	if root != nil {
		root.End()
	}
}

// ...so a root that only goes into a context is still flagged.
func carrierLeak(ctx context.Context) context.Context {
	root := tracer.StartRoot("POST /v1/observations", false) // want "StartRoot result root is not ended on every path"
	return trace.NewContext(ctx, root)
}

// The nil-guarded End is a complete discharge: on the other path the
// handle is nil and there is no span to end (the instrument shape).
func nilGuardedEnd() {
	root := tracer.StartRoot("GET /v1/truth", false)
	work()
	if root != nil {
		root.End()
	}
}

// An `== nil` early return is the same discharge inverted.
func nilEarlyReturn() {
	root := tracer.StartRoot("GET /v1/truth", false)
	if root == nil {
		return
	}
	root.End()
}

// Started and ended once per loop iteration: compliant.
func perIteration(t *trace.Trace) {
	for i := 0; i < 3; i++ {
		sp := t.StartSpan("chunk")
		work()
		sp.End()
	}
}

// Started in the loop, never ended: leaks one span per iteration.
// (Annotate is a plain receiver use, not an escape.)
func loopLeak(t *trace.Trace) {
	for i := 0; i < 3; i++ {
		sp := t.StartSpan("chunk") // want "StartSpan result sp is not ended on every path"
		work()
		sp.Annotate("chunked")
	}
}

// Handles started inside a function literal are that scope's problem.
func literalScope(t *trace.Trace) func() error {
	return func() error {
		sp := t.StartSpan("encode") // want "StartSpan result sp is not ended on every path"
		if work() {
			return errBoom
		}
		sp.End()
		return nil
	}
}

// A deliberate open span, annotated per line.
func annotatedLine(t *trace.Trace) {
	sp := t.StartSpan("encode") //eta2:spandiscipline-ok the recorder drain ends late spans
	sp.Annotate("deliberate")
}

// A deliberately exempt function.
//
//eta2:spandiscipline-ok latency fixture leaves spans open on purpose
func annotatedFunc(t *trace.Trace) {
	sp := t.StartSpan("encode")
	sp.Annotate("deliberate")
}

func work() bool { return false }

func commitSpanned(lsn uint64, sp *trace.Span) error {
	sp.End()
	return nil
}
