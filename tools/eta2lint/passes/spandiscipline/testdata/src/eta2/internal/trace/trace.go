// Package trace is a stub of the real tracing package with the handle
// surface spandiscipline classifies.
package trace

import (
	"context"
	"time"
)

type Tracer struct{}

func (tr *Tracer) StartRoot(root string, forced bool) *Trace { return nil }

type Trace struct{}

func (t *Trace) StartSpan(name string) *Span { return nil }
func (t *Trace) End()                        {}
func (t *Trace) SetLSN(lsn uint64)           {}

type Span struct {
	Dur time.Duration
}

func (s *Span) End()            {}
func (s *Span) Annotate(string) {}

func NewContext(ctx context.Context, t *Trace) context.Context { return ctx }
