// Package other is outside the spandiscipline scope (only eta2 and
// internal/{httpapi,wal,repl} own write-path spans): an unclosed span
// here draws no diagnostic.
package other

import "eta2/internal/trace"

func leakOutOfScope(t *trace.Trace) {
	sp := t.StartSpan("encode")
	sp.Annotate("never ended, deliberately unflagged")
}
