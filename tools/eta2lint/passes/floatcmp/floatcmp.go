// Package floatcmp flags == and != between floating-point operands
// outside tests. Exact equality on accumulated floats is order- and
// rounding-sensitive; use a tolerance helper, restructure the check
// (e.g. `<= 0` for a non-negative accumulator), or — for genuine exact
// sentinels like an untouched default — annotate:
//
//	//eta2:floatcmp-ok <why exact comparison is intended>
//
// Functions whose names mark them as tolerance helpers (approx, almost,
// within, close, eps, tol) are exempt: they legitimately compare floats
// while implementing the approved comparison.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"eta2lint/internal/analysis"
)

var toleranceHelper = regexp.MustCompile(`(?i)(approx|almost|within|close|eps|tol)`)

var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "flag ==/!= on floating-point values outside tests and tolerance helpers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				if toleranceHelper.MatchString(fn.Name.Name) || pass.FuncSuppressed(fn) {
					continue
				}
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if isFloat(pass.TypesInfo.TypeOf(be.X)) || isFloat(pass.TypesInfo.TypeOf(be.Y)) {
					pass.Reportf(be.OpPos, "%s on floating-point values: use a tolerance comparison or annotate //eta2:floatcmp-ok", be.Op)
				}
				return true
			})
		}
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
