package floatcmp

import (
	"testing"

	"eta2lint/internal/analysistest"
)

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "floatfixture")
}
