// Package floatfixture exercises floatcmp.
package floatfixture

type temperature float64

func compare(a, b float64, i, j int, f32 float32, t temperature) bool {
	if a == b { // want "== on floating-point values"
		return true
	}
	if a != b { // want "!= on floating-point values"
		return false
	}
	if i == j { // integers: exact comparison is fine
		return true
	}
	if f32 == float32(a) { // want "== on floating-point values"
		return true
	}
	if t == 0 { // want "== on floating-point values"
		return true
	}
	if a == 0 { //eta2:floatcmp-ok exact sentinel for the test
		return true
	}
	return a < b
}

// approxEqual is a tolerance helper: exact comparisons inside it
// implement the approved pattern and are exempt by name.
func approxEqual(a, b, eps float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}

//eta2:floatcmp-ok whole function compares exact bit patterns on purpose
func bitIdentical(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var packageLevel = 1.0 == 2.0 // want "== on floating-point values"
