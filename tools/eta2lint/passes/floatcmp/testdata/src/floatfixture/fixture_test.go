package floatfixture

// Exact comparisons in test files are allowed: tests assert
// bit-identical determinism on purpose.
func exactInTest(a, b float64) bool { return a == b }
