// Package allocdiscipline guards the zero-alloc ingest discipline (PR 8)
// in the packages the observation hot path crosses: the root eta2 server,
// internal/wal, and internal/httpapi. Two allocation patterns defeat the
// pooled-buffer work silently and are therefore banned by default:
//
//   - string([]byte) conversions: each one copies the bytes onto the
//     heap. On a decode path that runs per request this turns "zero
//     alloc" into "one alloc per field". Conversions compared directly
//     against a string (==, !=, switch case) are exempt — the compiler
//     elides the copy there.
//
//   - make(map[...]...) inside a function: a map born per call is a
//     hidden allocation plus hashing overhead; hot paths should reuse
//     structures carried by the server state or a pool.
//
// Setup, recovery, and copy-on-write mutation paths legitimately build
// maps and strings; annotate those sites (or their whole function) with
//
//	//eta2:allocdiscipline-ok <why this site is not per-request>
//
// so every exception carries its justification in the diff.
package allocdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"eta2lint/internal/analysis"
)

// ingestPackages are the import paths the observation ingest path
// traverses: HTTP decode -> server apply -> WAL append.
var ingestPackages = regexp.MustCompile(`^eta2(/internal/(wal|httpapi))?$`)

var Analyzer = &analysis.Analyzer{
	Name: "allocdiscipline",
	Doc:  "forbid per-call string([]byte) conversions and map allocations in ingest-path packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !ingestPackages.MatchString(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		exempt := comparisonOperands(f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || pass.FuncSuppressed(fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkStringConversion(pass, call, exempt)
				checkMakeMap(pass, call)
				return true
			})
		}
	}
	return nil
}

// comparisonOperands collects call expressions whose result feeds a
// string comparison directly: `string(b) == s`, `s != string(b)`, and
// `switch string(b) { ... }` (including its case values). The compiler
// performs these without copying, so they are not allocations.
func comparisonOperands(f *ast.File) map[ast.Expr]bool {
	exempt := make(map[ast.Expr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				exempt[n.X] = true
				exempt[n.Y] = true
			}
		case *ast.SwitchStmt:
			if n.Tag != nil {
				exempt[n.Tag] = true
				for _, stmt := range n.Body.List {
					if cc, ok := stmt.(*ast.CaseClause); ok {
						for _, v := range cc.List {
							exempt[v] = true
						}
					}
				}
			}
		}
		return true
	})
	return exempt
}

func checkStringConversion(pass *analysis.Pass, call *ast.CallExpr, exempt map[ast.Expr]bool) {
	if len(call.Args) != 1 || exempt[ast.Expr(call)] {
		return
	}
	// A conversion's Fun is a type expression denoting string.
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Kind() != types.String {
		return
	}
	argType := pass.TypesInfo.TypeOf(call.Args[0])
	if argType == nil {
		return
	}
	slice, ok := argType.Underlying().(*types.Slice)
	if !ok {
		return
	}
	if elem, ok := slice.Elem().Underlying().(*types.Basic); !ok || elem.Kind() != types.Byte {
		return
	}
	pass.Reportf(call.Pos(), "string([]byte) conversion in ingest-path package copies per call; keep bytes or annotate //eta2:allocdiscipline-ok")
}

func checkMakeMap(pass *analysis.Pass, call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) == 0 {
		return
	}
	// Only the builtin make, not a local function named make.
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	t := pass.TypesInfo.TypeOf(call.Args[0])
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); isMap {
		pass.Reportf(call.Pos(), "map allocated inside a function in an ingest-path package; reuse state/pooled structures or annotate //eta2:allocdiscipline-ok")
	}
}
