package allocdiscipline

import (
	"testing"

	"eta2lint/internal/analysistest"
)

func TestRootIngestPackage(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "eta2")
}

func TestNestedIngestPackage(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "eta2/internal/wal")
}

func TestOutOfScopePackageIsExempt(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "eta2/internal/truth")
}
