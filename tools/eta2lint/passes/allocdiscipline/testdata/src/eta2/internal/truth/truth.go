// Package truth is OUTSIDE the ingest path: allocdiscipline must stay
// silent here no matter what it allocates.
package truth

func scratch(b []byte) (string, map[int]float64) {
	return string(b), make(map[int]float64)
}
