// Package wal exercises allocdiscipline in a nested ingest-path package.
package wal

func frameKind(hdr []byte) string {
	return string(hdr[:1]) // want "string\\(\\[\\]byte\\) conversion in ingest-path package"
}

func index() map[uint64]int64 {
	return make(map[uint64]int64) // want "map allocated inside a function in an ingest-path package"
}
