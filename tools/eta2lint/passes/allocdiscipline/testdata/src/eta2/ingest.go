// Package eta2 exercises allocdiscipline inside the root ingest package.
package eta2

func decodeName(b []byte) string {
	return string(b) // want "string\\(\\[\\]byte\\) conversion in ingest-path package"
}

func decodeNameJustified(b []byte) string {
	return string(b) //eta2:allocdiscipline-ok recovery path, runs once per restart
}

func sniffMagic(b []byte) bool {
	// Comparisons are compiled without a copy: never flagged.
	if string(b) == "ETA2" {
		return true
	}
	return "ETA2" != string(b[:4])
}

func dispatch(b []byte) int {
	// A switch on the conversion (and its cases) is comparison context too.
	switch string(b) {
	case "users":
		return 1
	case string([]byte{'t'}):
		return 2
	}
	return 0
}

func perRequestIndex(ids []int) map[int]bool {
	seen := make(map[int]bool, len(ids)) // want "map allocated inside a function in an ingest-path package"
	for _, id := range ids {
		seen[id] = true
	}
	return seen
}

func copyOnWrite(old map[int]int) map[int]int {
	next := make(map[int]int, len(old)+1) //eta2:allocdiscipline-ok copy-on-write mutation, not per-observation
	for k, v := range old {
		next[k] = v
	}
	return next
}

//eta2:allocdiscipline-ok constructor: runs once per server
func newState() map[int]string {
	m := make(map[int]string)
	m[0] = string([]byte{'a'})
	return m
}

var packageLevel = map[int]int{} // composite literals and package vars are out of scope

func slicesAndRunesAreFine(n int, rs []rune) ([]byte, string) {
	buf := make([]byte, n)
	return buf, string(rs)
}
