// Package lockdiscipline enforces the Server locking rules from the
// concurrent-serving design (PR 3):
//
//  1. An exported method on *Server that writes Server fields must
//     acquire the write lock (s.mu.Lock), not just s.mu.RLock.
//  2. No WAL Commit/Sync, file fsync, journalCommit, or net/http call
//     may execute while s.mu is held (read or write): group commit
//     waits on fsync, and holding the server lock across that wait
//     serializes every reader behind disk latency.
//  3. Query-surface methods (Truth, Expertise, Domain, ...) must not
//     touch s.mu at all — the read path is lock-free by construction
//     (PR 6) and reads only the published immutable state snapshot.
//  4. The state snapshot pointer is published (Store/Swap/CompareAndSwap
//     on s.state) only inside the single publishLocked helper, so every
//     publication carries the same bookkeeping and ordering.
//
// Deliberate exceptions (e.g. a stop-the-world fsync during
// compaction) are annotated per line or per function:
//
//	//eta2:lockdiscipline-ok <why the wait under lock is intended>
//
// The lock-state walk is linear and intraprocedural; function-literal
// bodies are skipped (they run at call time, under unknown lock state).
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"eta2lint/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "Server methods: write lock for writes; no fsync/commit/network while mu held",
	Run:  run,
}

type lock int

const (
	unlocked lock = iota
	rlocked
	wlocked
)

type checker struct {
	pass   *analysis.Pass
	server types.Object // the Server type's *types.TypeName
}

func run(pass *analysis.Pass) error {
	server := findServer(pass.Pkg)
	if server == nil {
		return nil
	}
	c := &checker{pass: pass, server: server}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if pass.FuncSuppressed(fn) {
				continue
			}
			// Rule 4 applies to plain functions too (anything can hold a
			// *Server); the method-only rules follow the receiver check.
			c.checkPublish(fn)
			if fn.Recv == nil || !c.isServerRecv(fn) {
				continue
			}
			c.checkWriteLock(fn)
			c.checkReadPath(fn)
			// Convention: a method named *Locked runs with s.mu already
			// write-held by its caller.
			st := unlocked
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				st = wlocked
			}
			c.walkStmts(fn.Body.List, st)
		}
	}
	return nil
}

// findServer locates a type Server struct{ mu sync.RWMutex; ... }.
func findServer(pkg *types.Package) types.Object {
	obj := pkg.Scope().Lookup("Server")
	if obj == nil {
		return nil
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "mu" && isNamed(f.Type(), "sync", "RWMutex") {
			return obj
		}
	}
	return nil
}

func isNamed(t types.Type, pkgPath, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

func (c *checker) isServerRecv(fn *ast.FuncDecl) bool {
	if len(fn.Recv.List) != 1 {
		return false
	}
	return c.isServerExpr(fn.Recv.List[0].Type)
}

// isServerExpr reports whether e's type, pointer-stripped, is Server.
func (c *checker) isServerExpr(e ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == c.server
}

// --- rule 1: exported writers must take the write lock -------------------

func (c *checker) checkWriteLock(fn *ast.FuncDecl) {
	if !ast.IsExported(fn.Name.Name) {
		return
	}
	writes := c.fieldWrites(fn.Body)
	if len(writes) == 0 {
		return
	}
	hasLock := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := c.muOp(call); ok && op == "Lock" {
				hasLock = true
			}
		}
		return !hasLock
	})
	if !hasLock {
		c.pass.Reportf(writes[0].pos, "exported method %s writes Server field %s without s.mu.Lock (RLock is not sufficient for writes)", fn.Name.Name, writes[0].field)
	}
}

type fieldWrite struct {
	pos   token.Pos
	field string
}

// fieldWrites collects assignments to Server fields, including map/slice
// element stores through a field and ++/--.
func (c *checker) fieldWrites(body ast.Node) []fieldWrite {
	var writes []fieldWrite
	add := func(lhs ast.Expr) {
		// Unwrap index expressions: s.users[k] = v writes field users.
		for {
			if ix, ok := lhs.(*ast.IndexExpr); ok {
				lhs = ix.X
				continue
			}
			break
		}
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || !c.isServerExpr(sel.X) {
			return
		}
		writes = append(writes, fieldWrite{pos: lhs.Pos(), field: sel.Sel.Name})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				add(lhs)
			}
		case *ast.IncDecStmt:
			add(s.X)
		}
		return true
	})
	return writes
}

// --- rule 3: the query surface is lock-free ------------------------------

// querySurface lists the read-path methods that serve queries from the
// published immutable snapshot. They must not reference s.mu in any way:
// not even a transient RLock, or one writer parked on the lock stalls
// every reader behind it.
var querySurface = map[string]bool{
	"Truth":             true,
	"Expertise":         true,
	"ExpertiseInDomain": true,
	"Domain":            true,
	"NumUsers":          true,
	"NumDomains":        true,
	"Day":               true,
	"DurabilityStats":   true,
	"ReplicationStatus": true,
	"CommittedLSN":      true,
}

func (c *checker) checkReadPath(fn *ast.FuncDecl) {
	if !querySurface[fn.Name.Name] {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name == "mu" && c.isServerExpr(sel.X) {
			c.pass.Reportf(sel.Pos(), "query-surface method %s touches s.mu: the read path is lock-free, serve from the published state snapshot", fn.Name.Name)
		}
		return true
	})
}

// --- rule 4: one publication point ---------------------------------------

// checkPublish flags Store/Swap/CompareAndSwap on the Server's state
// pointer anywhere outside publishLocked. Concentrating publication in
// one helper keeps the metrics, ordering, and copy-on-write obligations
// in one reviewed place.
func (c *checker) checkPublish(fn *ast.FuncDecl) {
	if fn.Name.Name == "publishLocked" {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Store", "Swap", "CompareAndSwap":
		default:
			return true
		}
		field, ok := sel.X.(*ast.SelectorExpr)
		if !ok || field.Sel.Name != "state" || !c.isServerExpr(field.X) {
			return true
		}
		c.pass.Reportf(call.Pos(), "state snapshot published outside publishLocked: route all publications through the single publish helper")
		return true
	})
}

// --- rule 2: nothing slow while mu is held -------------------------------

// walkStmts tracks the s.mu state through a statement list, reporting
// forbidden calls made while the mutex is held. Returns the state at the
// end and whether the list always terminates (returns).
func (c *checker) walkStmts(stmts []ast.Stmt, st lock) (lock, bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if op, ok := c.muOp(call); ok {
					st = applyMuOp(st, op)
					continue
				}
			}
			c.checkCalls(s, st)
		case *ast.ReturnStmt:
			c.checkCalls(s, st)
			return st, true
		case *ast.DeferStmt:
			// defer s.mu.Unlock() releases at return: state is unchanged
			// for the statements that follow, which is exactly the linear
			// reading. Other deferred calls run under unknown state; skip.
		case *ast.GoStmt:
			// New goroutine: starts unlocked; body skipped like a FuncLit.
		case *ast.BlockStmt:
			var term bool
			if st, term = c.walkStmts(s.List, st); term {
				return st, true
			}
		case *ast.IfStmt:
			if s.Init != nil {
				c.checkCalls(s.Init, st)
			}
			c.checkCalls(s.Cond, st)
			bodyOut, bodyTerm := c.walkStmts(s.Body.List, st)
			elseOut, elseTerm := st, false
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseOut, elseTerm = c.walkStmts(e.List, st)
			case *ast.IfStmt:
				elseOut, elseTerm = c.walkStmts([]ast.Stmt{e}, st)
			}
			switch {
			case bodyTerm && elseTerm:
				return st, s.Else != nil
			case bodyTerm:
				st = elseOut
			case elseTerm:
				st = bodyOut
			default:
				st = maxLock(bodyOut, elseOut)
			}
		case *ast.ForStmt:
			if s.Init != nil {
				c.checkCalls(s.Init, st)
			}
			if s.Cond != nil {
				c.checkCalls(s.Cond, st)
			}
			c.walkStmts(s.Body.List, st)
		case *ast.RangeStmt:
			c.checkCalls(s.X, st)
			c.walkStmts(s.Body.List, st)
		case *ast.SwitchStmt:
			if s.Init != nil {
				c.checkCalls(s.Init, st)
			}
			if s.Tag != nil {
				c.checkCalls(s.Tag, st)
			}
			for _, cc := range s.Body.List {
				c.walkStmts(cc.(*ast.CaseClause).Body, st)
			}
		case *ast.TypeSwitchStmt:
			for _, cc := range s.Body.List {
				c.walkStmts(cc.(*ast.CaseClause).Body, st)
			}
		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				c.walkStmts(cc.(*ast.CommClause).Body, st)
			}
		case *ast.LabeledStmt:
			var term bool
			if st, term = c.walkStmts([]ast.Stmt{s.Stmt}, st); term {
				return st, true
			}
		default:
			c.checkCalls(stmt, st)
		}
	}
	return st, false
}

// checkCalls reports forbidden calls inside n given the lock state,
// without descending into function literals.
func (c *checker) checkCalls(n ast.Node, st lock) {
	if st == unlocked || n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if why := c.forbidden(call); why != "" {
			c.pass.Reportf(call.Pos(), "%s while s.mu is held: release the lock first or annotate //eta2:lockdiscipline-ok", why)
		}
		return true
	})
}

// forbidden classifies calls that must not run under s.mu.
func (c *checker) forbidden(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name

	// s.journalCommit / s.journalCommitSpanned wait on the WAL group
	// commit (and re-lock).
	if c.isServerExpr(sel.X) && (name == "journalCommit" || name == "journalCommitSpanned") {
		return name + " (waits on group commit)"
	}

	// Method receiver classification via type information.
	recv := c.pass.TypesInfo.TypeOf(sel.X)
	if recv != nil {
		if p, ok := recv.Underlying().(*types.Pointer); ok {
			recv = p.Elem()
		}
		if n, ok := recv.(*types.Named); ok {
			obj := n.Obj()
			pkgPath := ""
			if obj.Pkg() != nil {
				pkgPath = obj.Pkg().Path()
			}
			if strings.HasSuffix(pkgPath, "internal/wal") && (name == "Commit" || name == "CommitReported" || name == "Sync") {
				return "WAL " + name + " (fsync wait)"
			}
			if pkgPath == "os" && obj.Name() == "File" && name == "Sync" {
				return "file fsync"
			}
			if pkgPath == "net/http" {
				return "net/http call"
			}
		}
	}

	// Package-level net/http functions (http.Get, http.Post, ...).
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := c.pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "net/http" {
			return "net/http call"
		}
	}
	return ""
}

// muOp recognizes s.mu.Lock/RLock/Unlock/RUnlock on the Server mutex.
func (c *checker) muOp(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", false
	}
	mu, ok := sel.X.(*ast.SelectorExpr)
	if !ok || mu.Sel.Name != "mu" || !c.isServerExpr(mu.X) {
		return "", false
	}
	return sel.Sel.Name, true
}

func applyMuOp(st lock, op string) lock {
	switch op {
	case "Lock":
		return wlocked
	case "RLock":
		return rlocked
	default: // Unlock, RUnlock
		return unlocked
	}
}

func maxLock(a, b lock) lock {
	if a > b {
		return a
	}
	return b
}
