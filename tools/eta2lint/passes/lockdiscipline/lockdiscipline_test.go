package lockdiscipline

import (
	"testing"

	"eta2lint/internal/analysistest"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "eta2srv")
}
