// Package wal is a stub of the real WAL with the durability-facing
// method set the analyzers classify.
package wal

type Log struct{}

func (l *Log) Append(b []byte) (uint64, error)         { return 0, nil }
func (l *Log) Commit(lsn uint64) error                 { return nil }
func (l *Log) CommitReported(lsn uint64) (bool, error) { return false, nil }
func (l *Log) Sync() error                             { return nil }
