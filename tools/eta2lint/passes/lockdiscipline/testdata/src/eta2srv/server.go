// Package eta2srv exercises lockdiscipline against a Server shaped like
// the real one.
package eta2srv

import (
	"net/http"
	"os"
	"sync"
	"sync/atomic"

	"eta2/internal/wal"
)

type Server struct {
	mu      sync.RWMutex
	journal *wal.Log
	file    *os.File

	users map[string]int
	day   int

	state atomic.Pointer[serverState]
}

func (s *Server) journalCommit(lsn uint64) error { return s.journal.Commit(lsn) }

func (s *Server) journalCommitSpanned(lsn uint64, annot string) error {
	_, err := s.journal.CommitReported(lsn)
	return err
}

// AddUser takes the write lock before writing: compliant.
func (s *Server) AddUser(name string) {
	s.mu.Lock()
	s.users[name] = 1
	s.day++
	s.mu.Unlock()
}

// BadAddUser only takes the read lock around its writes.
func (s *Server) BadAddUser(name string) {
	s.mu.RLock()
	s.users[name] = 1 // want "writes Server field users without s.mu.Lock"
	s.mu.RUnlock()
}

// CommitUnderLock waits on the WAL group commit while holding the lock.
func (s *Server) CommitUnderLock() error {
	s.mu.Lock()
	s.day++
	err := s.journal.Commit(1) // want "WAL Commit .fsync wait. while s.mu is held"
	s.mu.Unlock()
	return err
}

// CommitAfterUnlock is the approved shape: buffer under the lock, wait
// for durability outside it.
func (s *Server) CommitAfterUnlock() error {
	s.mu.Lock()
	s.day++
	s.mu.Unlock()
	return s.journal.Commit(1)
}

// CommitUnderRLock: a read lock is no better for blocking operations.
func (s *Server) CommitUnderRLock() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.journalCommit(1) // want "journalCommit .waits on group commit. while s.mu is held"
}

// SpannedCommitUnderLock: the traced commit wrapper (PR 9) is the same
// group-commit wait with a span attached.
func (s *Server) SpannedCommitUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journalCommitSpanned(1, "role=leader") // want "journalCommitSpanned .waits on group commit. while s.mu is held"
}

// ReportedCommitUnderLock: the leader-reporting WAL entry point blocks
// exactly like Commit.
func (s *Server) ReportedCommitUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.journal.CommitReported(2) // want "WAL CommitReported .fsync wait. while s.mu is held"
	return err
}

// syncLocked runs with the lock held by convention (name suffix).
func (s *Server) syncLocked() error {
	if err := s.journal.Sync(); err != nil { // want "WAL Sync .fsync wait. while s.mu is held"
		return err
	}
	return s.file.Sync() // want "file fsync while s.mu is held"
}

// snapshotLocked is a deliberate stop-the-world exception.
//
//eta2:lockdiscipline-ok the snapshot fsync must run under the lock to capture a quiesced state
func (s *Server) snapshotLocked() error {
	return s.file.Sync()
}

// FetchUnderLock makes a network call with the lock held.
func (s *Server) FetchUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	http.Get("http://localhost/") // want "net/http call while s.mu is held"
}

// BranchRelease only unlocks on the early-return path; the fall-through
// is still locked when the commit happens.
func (s *Server) BranchRelease(fast bool) error {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		return nil
	}
	s.day++
	err := s.journal.Commit(2) // want "WAL Commit .fsync wait. while s.mu is held"
	s.mu.Unlock()
	return err
}

// DeferredUnlock releases at return: the body runs locked.
func (s *Server) DeferredUnlock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.day++
	return s.journal.Commit(3) // want "WAL Commit .fsync wait. while s.mu is held"
}

// AnnotatedCommit demonstrates the per-line escape hatch.
func (s *Server) AnnotatedCommit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journal.Commit(4) //eta2:lockdiscipline-ok single-writer test path measures commit latency under the lock
}

// Unlocked durability work is always fine.
func (s *Server) Flush() error {
	if err := s.journal.Sync(); err != nil {
		return err
	}
	return s.file.Sync()
}

// serverState is the immutable read snapshot (PR 6 shape).
type serverState struct {
	users map[string]int
	day   int
}

// publishLocked is the single allowed publication point for s.state.
func (s *Server) publishLocked() {
	s.state.Store(&serverState{users: s.users, day: s.day})
}

// Day serves from the published snapshot without locks: compliant.
func (s *Server) Day() int {
	return s.state.Load().day
}

// NumUsers is on the query surface but still goes through the lock.
func (s *Server) NumUsers() int {
	s.mu.RLock()         // want "query-surface method NumUsers touches s.mu"
	defer s.mu.RUnlock() // want "query-surface method NumUsers touches s.mu"
	return len(s.users)
}

// DurabilityStats even touching the write lock on the read path is wrong.
func (s *Server) DurabilityStats() int {
	s.mu.Lock()         // want "query-surface method DurabilityStats touches s.mu"
	defer s.mu.Unlock() // want "query-surface method DurabilityStats touches s.mu"
	return s.day
}

// SaveState is NOT on the query surface: locking there is allowed.
func (s *Server) SaveState() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.users)
}

// ReplicationStatus joined the query surface in the replication PR: the
// follower admin endpoint polls it continuously, so it must serve from
// the published snapshot like every other read.
func (s *Server) ReplicationStatus() int {
	s.mu.RLock()         // want "query-surface method ReplicationStatus touches s.mu"
	defer s.mu.RUnlock() // want "query-surface method ReplicationStatus touches s.mu"
	return s.day
}

// CommittedLSN feeds the replication long-poll; same lock-free rule.
func (s *Server) CommittedLSN() int {
	s.mu.Lock()         // want "query-surface method CommittedLSN touches s.mu"
	defer s.mu.Unlock() // want "query-surface method CommittedLSN touches s.mu"
	return s.day
}

// ApplyShipped mirrors the follower apply loop's compliant shape: mutate
// and publish under the write lock, commit the local log after release.
func (s *Server) ApplyShipped(name string) error {
	s.mu.Lock()
	s.users[name] = 1
	s.publishLocked()
	s.mu.Unlock()
	return s.journal.Commit(5)
}

// BadApplyShipped commits the shipped batch while still holding the
// lock — the follower read surface would stall behind the fsync.
func (s *Server) BadApplyShipped(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.users[name] = 1
	s.publishLocked()
	return s.journal.Commit(6) // want "WAL Commit .fsync wait. while s.mu is held"
}

// BadBootstrapAdopt republishes adopted snapshot state directly instead
// of going through publishLocked.
func (s *Server) BadBootstrapAdopt(users map[string]int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.users = users
	s.state.Store(&serverState{users: users}) // want "state snapshot published outside publishLocked"
}

// RoguePublish stores the snapshot pointer outside publishLocked.
func (s *Server) RoguePublish() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state.Store(&serverState{}) // want "state snapshot published outside publishLocked"
}

// restoreHelper is a plain function; rule 4 still applies to it.
func restoreHelper(s *Server) {
	s.state.Store(&serverState{}) // want "state snapshot published outside publishLocked"
}

// CompareAndSwapPublish: every atomic publication primitive is covered.
func (s *Server) CompareAndSwapPublish(old *serverState) {
	s.state.CompareAndSwap(old, &serverState{}) // want "state snapshot published outside publishLocked"
}
