// Package callgraph builds per-function effect summaries and a
// cross-package call graph for the inter-procedural analyzers
// (replaypurity, snapshotimmutability).
//
// Each package's analysis produces a Summary: for every function declared
// in the package, the nondeterministic effects it performs directly, the
// calls it makes (keyed by types.Func.FullName, so names are stable
// across compilation units), and the parameter positions it writes
// through. The Summary is exported as an analysis fact; when a dependent
// package is analyzed, the summaries of its imports are merged back in —
// and re-exported — so every package's fact blob is self-contained for
// its whole transitive dependency cone. That is what lets `go vet
// -vettool` runs, which analyze one compilation unit at a time, compose
// inter-procedural results exactly the way x/tools facts do.
//
// Approximations, chosen conservative for the replay-determinism use
// case:
//
//   - A function literal's body is attributed to the enclosing declared
//     function (the literal may run whenever the encloser does).
//   - A reference to a method or function that is not itself the callee
//     of a call expression (a method value, a function passed as an
//     argument, a `go f` statement) is a potential call edge.
//   - Interface method calls fan out through Binds: every named type in
//     the package is checked against every interface in scope, and the
//     resulting (interface method -> concrete method) edges ride the
//     summary. A type that satisfies an interface it never imports is a
//     documented blind spot, as in any non-whole-program analysis.
//   - A `go` statement carries its own effect; when the statement is
//     suppressed by a directive, the spawned subtree is pruned — the
//     directive audits the detached work.
package callgraph

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"eta2lint/internal/analysis"
)

// Effect kinds recorded in summaries.
const (
	EffTime     = "time"     // time.Now / time.Since
	EffRand     = "rand"     // anything in math/rand or math/rand/v2
	EffMapRange = "maprange" // range over a map outside sortedKeys helpers
	EffGo       = "go"       // goroutine spawn
	EffEnv      = "env"      // os.Getenv / os.LookupEnv / os.Environ
	EffSched    = "sched"    // runtime.GOMAXPROCS / runtime.NumCPU
	EffSelect   = "select"   // select statement
)

// Effect is one nondeterminism source performed directly by a function.
type Effect struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail"` // human fragment, e.g. "call to time.Now"
	Pos    string `json:"pos"`    // base-name file:line:col, for cross-package messages
	// TokPos is the precise position when the effect was found in the
	// package under analysis; zero for summaries merged from facts.
	TokPos token.Pos `json:"-"`
}

// Call is one (potential) call edge out of a function.
type Call struct {
	Callee string `json:"callee"` // types.Func.FullName of the target
	Pos    string `json:"pos"`
	// ArgParams maps callee parameter index -> caller parameter index for
	// arguments rooted at the caller's own parameters (index 0 is the
	// receiver when the function is a method; plain parameters follow).
	// It is how write-through-parameter facts propagate up call chains.
	ArgParams map[int]int `json:"arg_params,omitempty"`
	TokPos    token.Pos   `json:"-"`
}

// FuncSummary is the per-function analysis fact.
type FuncSummary struct {
	Effects []Effect `json:"effects,omitempty"`
	Calls   []Call   `json:"calls,omitempty"`
	// ParamWrites lists the parameter indices (0 = receiver) the function
	// writes through — a store to a map element, slice element, or field
	// reachable by dereferencing that parameter, directly or via a callee.
	ParamWrites []int `json:"param_writes,omitempty"`
}

// WritesParam reports whether the summary writes through parameter i.
func (fs *FuncSummary) WritesParam(i int) bool {
	for _, p := range fs.ParamWrites {
		if p == i {
			return true
		}
	}
	return false
}

// Summary is one package's exported fact: the merged summaries of the
// package and its entire transitive dependency cone.
type Summary struct {
	Funcs map[string]*FuncSummary `json:"funcs"`
	// Binds maps an interface method's FullName to the FullNames of the
	// concrete methods that may stand behind it.
	Binds map[string][]string `json:"binds,omitempty"`
}

// Graph is the analysis-time view: the merged summary plus the AST of
// the functions declared locally (for precise positions and directives).
type Graph struct {
	Summary *Summary
	// LocalDecls maps FullName -> declaration for functions defined in
	// the package under analysis (test files excluded).
	LocalDecls map[string]*ast.FuncDecl

	pass *analysis.Pass
}

// Analyze builds the package's call graph, merges the summaries of every
// import (read from analysis facts), runs the write-through-parameter
// fixpoint, and exports the merged summary as this package's fact.
func Analyze(pass *analysis.Pass) (*Graph, error) {
	merged := &Summary{
		Funcs: make(map[string]*FuncSummary),
		Binds: make(map[string][]string),
	}
	for _, imp := range pass.Pkg.Imports() {
		blob := pass.ReadFact(imp.Path())
		if blob == nil {
			continue
		}
		var dep Summary
		if err := json.Unmarshal(blob, &dep); err != nil {
			return nil, fmt.Errorf("callgraph: corrupt fact for %s: %w", imp.Path(), err)
		}
		for name, fs := range dep.Funcs {
			merged.Funcs[name] = fs
		}
		for iface, impls := range dep.Binds {
			merged.Binds[iface] = mergeStrings(merged.Binds[iface], impls)
		}
	}

	g := &Graph{Summary: merged, LocalDecls: make(map[string]*ast.FuncDecl), pass: pass}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			name := obj.FullName()
			g.LocalDecls[name] = fd
			if pass.FuncSuppressed(fd) {
				// Audited escape hatch: the whole function is out of scope,
				// including everything it calls.
				merged.Funcs[name] = &FuncSummary{}
				continue
			}
			merged.Funcs[name] = buildSummary(pass, fd, obj)
		}
	}

	bindLocalTypes(pass, merged)
	propagateParamWrites(merged, g.LocalDecls)

	for _, fs := range merged.Funcs {
		sort.Ints(fs.ParamWrites)
	}
	for iface := range merged.Binds {
		sort.Strings(merged.Binds[iface])
	}

	blob, err := json.Marshal(merged)
	if err != nil {
		return nil, fmt.Errorf("callgraph: encode summary: %w", err)
	}
	pass.ExportFact(blob)
	return g, nil
}

// Func returns the summary for a FullName, or nil if outside the
// analysis universe (standard library, unanalyzed module).
func (g *Graph) Func(name string) *FuncSummary { return g.Summary.Funcs[name] }

// Impls returns the concrete methods bound to an interface method name.
func (g *Graph) Impls(ifaceMethod string) []string { return g.Summary.Binds[ifaceMethod] }

// ---- summary construction ----------------------------------------------

type builder struct {
	pass    *analysis.Pass
	fs      *FuncSummary
	fnName  string              // bare function name, for the sortedKeys exemption
	params  map[*types.Var]int  // receiver/parameter object -> index (0 = receiver)
	callees map[*ast.Ident]bool // idents already consumed as direct callees
}

func buildSummary(pass *analysis.Pass, fd *ast.FuncDecl, obj *types.Func) *FuncSummary {
	b := &builder{
		pass:    pass,
		fs:      &FuncSummary{},
		fnName:  fd.Name.Name,
		params:  paramIndex(obj),
		callees: make(map[*ast.Ident]bool),
	}
	b.walk(fd.Body)
	return b.fs
}

// paramIndex assigns each receiver/parameter object its summary index.
func paramIndex(obj *types.Func) map[*types.Var]int {
	sig := obj.Type().(*types.Signature)
	idx := make(map[*types.Var]int)
	n := 0
	if recv := sig.Recv(); recv != nil {
		idx[recv] = 0
		n = 1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		idx[sig.Params().At(i)] = n + i
	}
	return idx
}

func (b *builder) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if b.pass.SuppressedAt(n.Pos()) {
				// The directive audits the detached work: prune the spawned
				// subtree, including the call edge into it.
				return false
			}
			b.effect(EffGo, "goroutine spawn (`go` statement)", n.Pos())
		case *ast.SelectStmt:
			if !b.pass.SuppressedAt(n.Pos()) {
				b.effect(EffSelect, "select statement (case order is scheduler-dependent)", n.Pos())
			}
		case *ast.RangeStmt:
			b.rangeStmt(n)
		case *ast.CallExpr:
			b.call(n)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				b.paramWrite(lhs)
			}
		case *ast.IncDecStmt:
			b.paramWrite(n.X)
		case *ast.Ident:
			b.reference(n)
		}
		return true
	})
}

func (b *builder) effect(kind, detail string, pos token.Pos) {
	b.fs.Effects = append(b.fs.Effects, Effect{
		Kind:   kind,
		Detail: detail,
		Pos:    shortPos(b.pass.Fset, pos),
		TokPos: pos,
	})
}

func (b *builder) rangeStmt(rs *ast.RangeStmt) {
	t := b.pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	// sorted* helpers (sortedKeys, sortedTaskIDs, ...) exist to turn a
	// map into an ordered slice; the iteration inside them is the
	// sanctioned one.
	if lower := strings.ToLower(b.fnName); strings.HasPrefix(lower, "sorted") {
		return
	}
	if b.pass.SuppressedAt(rs.For) {
		return
	}
	b.effect(EffMapRange, "range over map (nondeterministic iteration order)", rs.For)
}

// call handles a call expression: a known nondeterminism source becomes
// an effect, anything else a call edge with its argument-to-parameter
// aliasing recorded.
func (b *builder) call(call *ast.CallExpr) {
	// delete/copy are the builtins that mutate their first argument.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := b.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			if (id.Name == "delete" || id.Name == "copy") && len(call.Args) > 0 {
				if idx, ok := b.paramRoot(call.Args[0]); ok {
					b.addParamWrite(idx)
				}
			}
			return
		}
	}
	callee := Callee(b.pass.TypesInfo, call)
	if callee == nil {
		return // dynamic call through a function value; the reference edge covers named targets
	}
	if id := calleeIdent(call.Fun); id != nil {
		b.callees[id] = true
	}
	if b.pass.SuppressedAt(call.Pos()) {
		return
	}
	if kind, detail := specialEffect(callee); kind != "" {
		b.effect(kind, detail, call.Pos())
		return
	}
	if callee.Pkg() == nil {
		return // error.Error and friends from the universe scope
	}
	b.edge(callee, call.Pos(), b.argParams(call, callee))
}

// reference records a potential call edge for a function or method used
// as a value (method value, callback argument, goroutine target).
func (b *builder) reference(id *ast.Ident) {
	if b.callees[id] {
		return
	}
	fn, ok := b.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if b.pass.SuppressedAt(id.Pos()) {
		return
	}
	if kind, detail := specialEffect(fn); kind != "" {
		b.effect(kind, detail+" (via function value)", id.Pos())
		return
	}
	b.edge(fn, id.Pos(), nil)
}

func (b *builder) edge(callee *types.Func, pos token.Pos, argParams map[int]int) {
	b.fs.Calls = append(b.fs.Calls, Call{
		Callee:    callee.FullName(),
		Pos:       shortPos(b.pass.Fset, pos),
		ArgParams: argParams,
		TokPos:    pos,
	})
}

// argParams maps callee parameter indices to caller parameter indices
// for arguments rooted at the caller's own parameters.
func (b *builder) argParams(call *ast.CallExpr, callee *types.Func) map[int]int {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out map[int]int
	record := func(calleeIdx int, arg ast.Expr) {
		if callerIdx, ok := b.paramRoot(arg); ok {
			if out == nil {
				out = make(map[int]int)
			}
			out[calleeIdx] = callerIdx
		}
	}
	n := 0
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			record(0, sel.X)
		}
		n = 1
	}
	for i, arg := range call.Args {
		calleeIdx := i
		if last := sig.Params().Len() - 1; calleeIdx > last {
			if last < 0 {
				break
			}
			calleeIdx = last // variadic tail folds onto the last parameter
		}
		record(n+calleeIdx, arg)
	}
	return out
}

// paramWrite records a write through one of the function's own
// parameters: the left-hand side dereferences (map/slice index, pointer
// field, explicit *p) a chain rooted at a parameter. Rebinding the
// parameter variable itself is not a write-through.
func (b *builder) paramWrite(lhs ast.Expr) {
	root, derefs := derefRoot(b.pass.TypesInfo, lhs)
	if root == nil || derefs == 0 {
		return
	}
	if idx, ok := b.lookupParam(root); ok {
		b.addParamWrite(idx)
	}
}

func (b *builder) addParamWrite(idx int) {
	if !b.fs.WritesParam(idx) {
		b.fs.ParamWrites = append(b.fs.ParamWrites, idx)
	}
}

// paramRoot resolves an expression to the caller parameter it is rooted
// at, peeling selectors, indexes, derefs, and address-of.
func (b *builder) paramRoot(e ast.Expr) (int, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return 0, false
			}
			e = x.X
		case *ast.Ident:
			return b.lookupParam(x)
		default:
			return 0, false
		}
	}
}

func (b *builder) lookupParam(id *ast.Ident) (int, bool) {
	v, ok := b.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return 0, false
	}
	idx, ok := b.params[v]
	return idx, ok
}

// derefRoot walks an assignable expression down to its root identifier,
// counting the dereference steps (map/slice element, field through
// pointer, explicit *) along the way. Zero derefs means the write lands
// in the local variable itself.
func derefRoot(info *types.Info, e ast.Expr) (*ast.Ident, int) {
	derefs := 0
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			derefs++
			e = x.X
		case *ast.IndexExpr:
			switch info.TypeOf(x.X).Underlying().(type) {
			case *types.Map, *types.Slice, *types.Pointer:
				derefs++
			}
			e = x.X
		case *ast.SelectorExpr:
			if t := info.TypeOf(x.X); t != nil {
				if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
					derefs++
				}
			}
			e = x.X
		case *ast.Ident:
			return x, derefs
		default:
			return nil, 0
		}
	}
}

// specialEffect classifies calls that ARE the nondeterminism, rather
// than paths to it.
func specialEffect(fn *types.Func) (kind, detail string) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", ""
	}
	switch pkg.Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			return EffTime, "call to time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		return EffRand, "call to " + pkg.Path() + "." + fn.Name()
	case "os":
		switch fn.Name() {
		case "Getenv", "LookupEnv", "Environ":
			return EffEnv, "environment read os." + fn.Name()
		}
	case "runtime":
		switch fn.Name() {
		case "GOMAXPROCS", "NumCPU":
			return EffSched, "scheduler query runtime." + fn.Name()
		}
	}
	return "", ""
}

// Callee resolves the static or interface-method target of a call, or
// nil for dynamic calls through function values and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Qualified identifier: pkg.Func.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// CallArgs returns the call's argument expressions keyed by the callee's
// parameter convention (0 = receiver for methods), the same indexing
// ParamWrites uses.
func CallArgs(info *types.Info, call *ast.CallExpr, callee *types.Func) map[int]ast.Expr {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := make(map[int]ast.Expr)
	n := 0
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			out[0] = sel.X
		}
		n = 1
	}
	for i, arg := range call.Args {
		calleeIdx := i
		if last := sig.Params().Len() - 1; calleeIdx > last {
			if last < 0 {
				break
			}
			calleeIdx = last
		}
		if _, taken := out[n+calleeIdx]; !taken {
			out[n+calleeIdx] = arg
		}
	}
	return out
}

func calleeIdent(fun ast.Expr) *ast.Ident {
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return f
	case *ast.SelectorExpr:
		return f.Sel
	}
	return nil
}

// ---- interface binds -----------------------------------------------------

// bindLocalTypes records, for every named non-interface type declared in
// this package, which interface methods its methods may stand behind.
// Interfaces are drawn from this package and its direct imports — the
// packages whose interfaces this package can possibly name.
func bindLocalTypes(pass *analysis.Pass, s *Summary) {
	var ifaces []*types.Named
	collect := func(scope *types.Scope, exportedOnly bool) {
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() || (exportedOnly && !tn.Exported()) {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if it, ok := named.Underlying().(*types.Interface); ok && it.NumMethods() > 0 {
				ifaces = append(ifaces, named)
			}
		}
	}
	collect(pass.Pkg.Scope(), false)
	for _, imp := range pass.Pkg.Imports() {
		collect(imp.Scope(), true)
	}

	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		ptr := types.NewPointer(named)
		for _, iface := range ifaces {
			it := iface.Underlying().(*types.Interface)
			if !types.Implements(named, it) && !types.Implements(ptr, it) {
				continue
			}
			for i := 0; i < it.NumMethods(); i++ {
				im := it.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(ptr, true, im.Pkg(), im.Name())
				fn, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				s.Binds[im.FullName()] = mergeStrings(s.Binds[im.FullName()], []string{fn.FullName()})
			}
		}
	}
}

// ---- write-through-parameter fixpoint -----------------------------------

// propagateParamWrites closes ParamWrites over call edges: if f passes
// its parameter i as callee parameter j and the callee writes through j,
// then f writes through i. Interface calls fan out through Binds. Only
// local functions can change — imported summaries arrived already
// closed over their own dependency cones.
func propagateParamWrites(s *Summary, local map[string]*ast.FuncDecl) {
	for changed := true; changed; {
		changed = false
		for name := range local {
			fs := s.Funcs[name]
			if fs == nil {
				continue
			}
			for _, c := range fs.Calls {
				for _, target := range resolveTargets(s, c.Callee) {
					callee := s.Funcs[target]
					if callee == nil {
						continue
					}
					for calleeIdx, callerIdx := range c.ArgParams {
						if callee.WritesParam(calleeIdx) && !fs.WritesParam(callerIdx) {
							fs.ParamWrites = append(fs.ParamWrites, callerIdx)
							changed = true
						}
					}
				}
			}
		}
	}
}

// resolveTargets expands an interface method through Binds; a concrete
// name resolves to itself.
func resolveTargets(s *Summary, callee string) []string {
	if impls := s.Binds[callee]; len(impls) > 0 {
		if s.Funcs[callee] == nil {
			return impls
		}
		return append([]string{callee}, impls...)
	}
	return []string{callee}
}

func mergeStrings(dst []string, src []string) []string {
	have := make(map[string]bool, len(dst))
	for _, s := range dst {
		have[s] = true
	}
	for _, s := range src {
		if !have[s] {
			dst = append(dst, s)
			have[s] = true
		}
	}
	return dst
}

// shortPos renders a position with a base filename — findings that cross
// package boundaries embed it in messages, so it must not depend on the
// checkout path.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", filepath.Base(p.Filename), p.Line, p.Column)
}
