// Package unitchecker implements the `go vet -vettool` protocol without
// golang.org/x/tools: cmd/go hands the tool a JSON config file describing
// one compilation unit (source files plus the export data of every
// dependency, already built by the go command), the tool type-checks the
// unit, runs its analyzers, writes the (empty) facts file cmd/go expects,
// and reports diagnostics on stderr with a non-zero exit.
//
// The protocol, as documented in x/tools' unitchecker:
//
//	tool -V=full         describe the executable for the build cache
//	tool -flags          describe the tool's flags in JSON
//	tool foo.cfg         analyze the unit described by foo.cfg
package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"

	"eta2lint/internal/analysis"
	"eta2lint/internal/load"
)

// Config is the JSON unit description cmd/go writes for -vettool tools.
// Field names must match cmd/go's encoding (x/tools unitchecker.Config).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Run analyzes the unit described by cfgPath and returns the process exit
// code: 0 clean, 1 operational error, 2 diagnostics reported.
func Run(cfgPath string, analyzers []*analysis.Analyzer) int {
	cfg, err := readConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// This suite exports no facts, so dependency units need no analysis —
	// only the facts file cmd/go caches.
	if cfg.VetxOnly {
		if err := writeVetx(cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	diags, fset, err := analyze(cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			_ = writeVetx(cfg)
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := writeVetx(cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer.Name)
	}
	return 2
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("eta2lint: read config: %w", err)
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("eta2lint: parse config %s: %w", path, err)
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		return nil, fmt.Errorf("eta2lint: unsupported compiler %q", cfg.Compiler)
	}
	return cfg, nil
}

// analyze parses and type-checks the unit, then runs the analyzers.
func analyze(cfg *Config, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, fmt.Errorf("eta2lint: %w", err)
		}
		files = append(files, f)
	}

	imp := newUnitImporter(fset, cfg)
	info := load.NewInfo()
	conf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("eta2lint: typecheck %s: %w", cfg.ImportPath, err)
	}
	diags, err := analysis.RunAnalyzers(analyzers, fset, files, pkg, info)
	if err != nil {
		return nil, nil, fmt.Errorf("eta2lint: %w", err)
	}
	return diags, fset, nil
}

// newUnitImporter reads dependency export data from the files cmd/go
// listed in the config, honoring its import-path remapping.
func newUnitImporter(fset *token.FileSet, cfg *Config) types.Importer {
	files := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		files[path] = file
	}
	// ImportMap translates source-level import paths to the canonical
	// package paths PackageFile is keyed by.
	for src, canonical := range cfg.ImportMap {
		if src == canonical {
			continue
		}
		if file, ok := cfg.PackageFile[canonical]; ok {
			files[src] = file
		}
	}
	imp := load.NewExportImporter(fset, files)
	imp.Strict = true
	return imp
}

// writeVetx writes the facts file cmd/go caches for dependent units.
// This suite exports no facts, so the file is empty — but it must exist.
func writeVetx(cfg *Config) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
		return fmt.Errorf("eta2lint: write facts: %w", err)
	}
	return nil
}
