// Package unitchecker implements the `go vet -vettool` protocol without
// golang.org/x/tools: cmd/go hands the tool a JSON config file describing
// one compilation unit (source files plus the export data of every
// dependency, already built by the go command), the tool type-checks the
// unit, runs its analyzers, writes the facts file cmd/go expects, and
// reports diagnostics on stderr with a non-zero exit.
//
// The protocol, as documented in x/tools' unitchecker:
//
//	tool -V=full         describe the executable for the build cache
//	tool -flags          describe the tool's flags in JSON
//	tool foo.cfg         analyze the unit described by foo.cfg
//
// Facts: dependency units are analyzed first (cmd/go schedules them with
// VetxOnly=true and caches their facts files), and the facts they export
// arrive here through PackageVetx — so an inter-procedural analyzer sees
// the effect summaries of everything the unit imports, exactly the way
// x/tools facts compose across compilation units. VetxOnly units run the
// full analysis with diagnostics suppressed: their job is producing
// facts, not findings.
package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"

	"eta2lint/internal/analysis"
	"eta2lint/internal/load"
)

// Config is the JSON unit description cmd/go writes for -vettool tools.
// Field names must match cmd/go's encoding (x/tools unitchecker.Config).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Run analyzes the unit described by cfgPath and returns the process exit
// code: 0 clean, 1 operational error, 2 diagnostics reported.
func Run(cfgPath string, analyzers []*analysis.Analyzer) int {
	cfg, err := readConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	diags, facts, fset, err := analyze(cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			_ = writeVetx(cfg, nil)
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := writeVetx(cfg, facts.exported); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer.Name)
	}
	return 2
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("eta2lint: read config: %w", err)
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("eta2lint: parse config %s: %w", path, err)
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		return nil, fmt.Errorf("eta2lint: unsupported compiler %q", cfg.Compiler)
	}
	return cfg, nil
}

// analyze parses and type-checks the unit, then runs the analyzers with
// dependency facts wired in.
func analyze(cfg *Config, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, *vetxFacts, *token.FileSet, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("eta2lint: %w", err)
		}
		files = append(files, f)
	}

	imp := newUnitImporter(fset, cfg)
	info := load.NewInfo()
	conf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("eta2lint: typecheck %s: %w", cfg.ImportPath, err)
	}
	facts := newVetxFacts(cfg)
	diags, err := analysis.RunAnalyzersFacts(analyzers, fset, files, pkg, info, facts)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("eta2lint: %w", err)
	}
	return diags, facts, fset, nil
}

// vetxFacts implements analysis.Facts over the unit's PackageVetx table:
// reads lazily open dependency facts files, exports collect in memory
// until Run writes the unit's own vetx file.
type vetxFacts struct {
	files    map[string]string            // import path -> vetx file
	loaded   map[string]map[string][]byte // import path -> decoded facts
	exported map[string][]byte            // analyzer -> blob
}

func newVetxFacts(cfg *Config) *vetxFacts {
	files := make(map[string]string, len(cfg.PackageVetx))
	for path, file := range cfg.PackageVetx {
		files[path] = file
	}
	// ImportMap translates source-level import paths to the canonical
	// package paths PackageVetx is keyed by — the same remapping the
	// export-data importer applies (see newUnitImporter).
	for src, canonical := range cfg.ImportMap {
		if src == canonical {
			continue
		}
		if file, ok := cfg.PackageVetx[canonical]; ok {
			files[src] = file
		}
	}
	return &vetxFacts{
		files:    files,
		loaded:   make(map[string]map[string][]byte),
		exported: make(map[string][]byte),
	}
}

func (v *vetxFacts) Read(analyzer, pkgPath string) []byte {
	byAnalyzer, ok := v.loaded[pkgPath]
	if !ok {
		file, listed := v.files[pkgPath]
		if !listed {
			// Outside the analysis universe (typically the standard
			// library): no facts, by design.
			v.loaded[pkgPath] = nil
			return nil
		}
		decoded, err := analysis.DecodeVetx(file)
		if err != nil {
			// A garbled dependency facts file degrades to "no facts"
			// rather than failing the whole unit: the dependency itself
			// was already analyzed (and its own diagnostics reported)
			// when its unit ran.
			decoded = nil
		}
		byAnalyzer = decoded
		v.loaded[pkgPath] = byAnalyzer
	}
	return byAnalyzer[analyzer]
}

func (v *vetxFacts) Export(analyzer string, data []byte) {
	v.exported[analyzer] = data
}

// newUnitImporter reads dependency export data from the files cmd/go
// listed in the config, honoring its import-path remapping.
func newUnitImporter(fset *token.FileSet, cfg *Config) types.Importer {
	files := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		files[path] = file
	}
	// ImportMap translates source-level import paths to the canonical
	// package paths PackageFile is keyed by.
	for src, canonical := range cfg.ImportMap {
		if src == canonical {
			continue
		}
		if file, ok := cfg.PackageFile[canonical]; ok {
			files[src] = file
		}
	}
	imp := load.NewExportImporter(fset, files)
	imp.Strict = true
	return imp
}

// writeVetx writes the facts file cmd/go caches for dependent units. It
// must exist even when no analyzer exported anything.
func writeVetx(cfg *Config, byAnalyzer map[string][]byte) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	if err := analysis.EncodeVetx(cfg.VetxOutput, byAnalyzer); err != nil {
		return fmt.Errorf("eta2lint: %w", err)
	}
	return nil
}
