// Package load type-checks Go packages for analysis without any
// dependency beyond the standard library and the go toolchain itself.
// Dependencies are never re-parsed: their compiler export data is
// obtained from `go list -export`, which serves it from the build cache
// (compiling on demand, fully offline), and read through
// go/importer.ForCompiler — the same reader the compiler uses.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Unit is one fully parsed and type-checked package.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Dir   string
	// Imports lists the package's direct imports (canonical paths), so
	// the standalone driver can order units dependencies-first and flow
	// analysis facts the same direction the vet protocol does.
	Imports []string
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Packages loads every package matching patterns in dir (module root),
// returning type-checked units for the matched packages only — their
// dependencies are consumed as export data.
func Packages(dir string, patterns []string) ([]*Unit, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decode go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := NewExportImporter(fset, exports)
	var units []*Unit
	for _, p := range targets {
		if len(p.GoFiles) == 0 || len(p.CgoFiles) > 0 {
			continue
		}
		u, err := check(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		u.Imports = p.Imports
		units = append(units, u)
	}
	return units, nil
}

// check parses and type-checks one package from source.
func check(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Unit, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: typecheck %s: %w", path, err)
	}
	return &Unit{Fset: fset, Files: files, Pkg: pkg, Info: info, Dir: dir}, nil
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// ExportImporter resolves imports from compiler export data files. Paths
// missing from the initial table are looked up with `go list -export` on
// demand — the path the analysistest harness takes for standard-library
// imports of testdata packages.
type ExportImporter struct {
	base types.ImporterFrom

	// Strict disables the `go list` fallback: a path missing from the
	// table is then an error. The vet-protocol driver sets it — there the
	// table is the unit's full declared dependency set, and a miss is a
	// config bug that must be loud.
	Strict bool

	mu    sync.Mutex
	files map[string]string
}

// NewExportImporter builds an importer over a path -> export-file table.
func NewExportImporter(fset *token.FileSet, files map[string]string) *ExportImporter {
	if files == nil {
		files = make(map[string]string)
	}
	e := &ExportImporter{files: files}
	e.base = importer.ForCompiler(fset, "gc", e.lookup).(types.ImporterFrom)
	return e
}

// Import implements types.Importer.
func (e *ExportImporter) Import(path string) (*types.Package, error) {
	return e.base.ImportFrom(path, "", 0)
}

// lookup opens the export data for one import path.
func (e *ExportImporter) lookup(path string) (io.ReadCloser, error) {
	e.mu.Lock()
	file, ok := e.files[path]
	e.mu.Unlock()
	if !ok {
		if e.Strict {
			return nil, fmt.Errorf("load: no export data for %q in unit config", path)
		}
		out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
		if err != nil {
			return nil, fmt.Errorf("load: no export data for %q: %w", path, err)
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		e.mu.Lock()
		e.files[path] = file
		e.mu.Unlock()
	}
	return os.Open(file)
}
