// Package multichecker is the eta2lint driver. One binary serves both
// entry points the issue requires:
//
//   - standalone: `eta2lint [packages]` loads the packages itself (via
//     go list + export data) and runs every analyzer;
//   - go vet:     `go vet -vettool=$(which eta2lint) ./...` — cmd/go
//     invokes the binary per compilation unit with -V=full / -flags /
//     a JSON config file, handled by the unitchecker package.
//
// Standalone output modes:
//
//	eta2lint ./...                      human-readable findings on stderr
//	eta2lint -json ./...                canonical JSON findings on stdout
//	eta2lint -baseline f.json ./...     fail only on findings not in f.json
//	eta2lint -github ./...              GitHub Actions ::error annotations
package multichecker

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"

	"eta2lint/internal/analysis"
	"eta2lint/internal/findings"
	"eta2lint/internal/load"
	"eta2lint/internal/unitchecker"
)

// Main dispatches between the vet protocol and the standalone driver and
// returns the process exit code: 0 clean, 1 error, 2 findings.
func Main(analyzers ...*analysis.Analyzer) int {
	args := os.Args[1:]

	// go vet handshake: identify the tool for the build cache. cmd/go
	// requires the trailing buildID= field; hashing the executable makes
	// cached vet results invalidate when the tool binary changes.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("eta2lint version devel buildID=%x\n", selfHash())
		return 0
	}
	// go vet handshake: declare (no) tool flags.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}
	// go vet per-unit invocation: a single JSON config argument.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unitchecker.Run(args[0], analyzers)
	}

	return standalone(args, analyzers)
}

// options are the standalone driver's flags. Parsed by hand so the vet
// handshake paths above stay byte-exact and flag.CommandLine stays free
// for embedding callers.
type options struct {
	json     bool   // emit canonical JSON findings on stdout
	github   bool   // emit GitHub Actions ::error annotations on stdout
	baseline string // path to a committed findings baseline
}

func parseFlags(args []string, analyzers []*analysis.Analyzer) (*options, []string, error) {
	opts := &options{}
	i := 0
	for ; i < len(args); i++ {
		arg := args[i]
		if !strings.HasPrefix(arg, "-") {
			break
		}
		switch arg {
		case "-json", "--json":
			opts.json = true
		case "-github", "--github":
			opts.github = true
		case "-baseline", "--baseline":
			i++
			if i >= len(args) {
				return nil, nil, fmt.Errorf("-baseline requires a file argument")
			}
			opts.baseline = args[i]
		case "-h", "-help", "--help":
			usage(os.Stderr, analyzers)
			return nil, nil, fmt.Errorf("help requested")
		default:
			usage(os.Stderr, analyzers)
			return nil, nil, fmt.Errorf("unknown flag %s", arg)
		}
	}
	return opts, args[i:], nil
}

func usage(w io.Writer, analyzers []*analysis.Analyzer) {
	fmt.Fprintf(w, "usage: eta2lint [-json] [-github] [-baseline file] [packages]\n\nAnalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(w, "  %-20s %s\n", a.Name, firstLine(a.Doc))
	}
}

// standalone loads the named packages (default ./...) and analyzes them
// dependencies-first so inter-procedural facts flow the same direction
// they do under the go vet protocol.
func standalone(args []string, analyzers []*analysis.Analyzer) int {
	opts, patterns, err := parseFlags(args, analyzers)
	if err != nil {
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "eta2lint:", err)
		return 1
	}
	units, err := load.Packages(dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eta2lint:", err)
		return 1
	}
	units = topoSort(units)

	facts := analysis.NewMemFacts()
	var all []findings.Finding
	for _, u := range units {
		diags, err := analysis.RunAnalyzersFacts(analyzers, u.Fset, u.Files, u.Pkg, u.Info,
			facts.For(u.Pkg.Path()))
		if err != nil {
			fmt.Fprintln(os.Stderr, "eta2lint:", err)
			return 1
		}
		for _, d := range diags {
			pos := u.Fset.Position(d.Pos)
			all = append(all, findings.Finding{
				Analyzer: d.Analyzer.Name,
				File:     relPath(dir, pos.Filename),
				Line:     pos.Line,
				Col:      pos.Column,
				Message:  d.Message,
			})
		}
	}
	return emit(dir, opts, all)
}

// emit applies the baseline and renders findings in the selected mode.
func emit(dir string, opts *options, all []findings.Finding) int {
	fresh := all
	if opts.baseline != "" {
		f, err := os.Open(opts.baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eta2lint:", err)
			return 1
		}
		accepted, err := findings.Decode(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "eta2lint:", err)
			return 1
		}
		var stale int
		fresh, stale = findings.NewBaseline(accepted).Filter(all)
		if stale > 0 {
			fmt.Fprintf(os.Stderr, "eta2lint: %d baseline entries no longer occur; regenerate %s with -json\n",
				stale, opts.baseline)
		}
	}

	if opts.json {
		// JSON mode reports everything (the baseline workflow pipes this
		// back into the baseline file); the exit code still reflects only
		// fresh findings so `-json -baseline` works in CI.
		if err := findings.Encode(os.Stdout, all); err != nil {
			fmt.Fprintln(os.Stderr, "eta2lint:", err)
			return 1
		}
	}
	findings.Sort(fresh)
	for _, f := range fresh {
		if opts.github {
			fmt.Fprintln(os.Stdout, findings.GitHubAnnotation(f))
		}
		if !opts.json || opts.github {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	if len(fresh) > 0 {
		return 2
	}
	return 0
}

// topoSort orders units dependencies-first among the matched packages so
// each package's analysis sees the facts of every in-universe import.
// go list output is already close to this order, but the contract here
// must hold regardless.
func topoSort(units []*load.Unit) []*load.Unit {
	byPath := make(map[string]*load.Unit, len(units))
	for _, u := range units {
		byPath[u.Pkg.Path()] = u
	}
	var out []*load.Unit
	done := make(map[string]bool, len(units))
	var visit func(u *load.Unit)
	visit = func(u *load.Unit) {
		if done[u.Pkg.Path()] {
			return
		}
		done[u.Pkg.Path()] = true // pre-mark: import cycles can't recurse forever
		for _, imp := range u.Imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		out = append(out, u)
	}
	for _, u := range units {
		visit(u)
	}
	return out
}

// relPath makes pos filenames module-relative when possible so findings
// and baselines are stable across checkouts.
func relPath(dir, name string) string {
	if rel, ok := strings.CutPrefix(name, dir+string(os.PathSeparator)); ok {
		return rel
	}
	return name
}

// selfHash hashes the running executable for the -V=full build ID.
func selfHash() []byte {
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	return h.Sum(nil)
}

func firstLine(s string) string {
	line, _, _ := strings.Cut(s, "\n")
	return line
}
