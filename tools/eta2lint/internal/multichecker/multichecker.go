// Package multichecker is the eta2lint driver. One binary serves both
// entry points the issue requires:
//
//   - standalone: `eta2lint [packages]` loads the packages itself (via
//     go list + export data) and runs every analyzer;
//   - go vet:     `go vet -vettool=$(which eta2lint) ./...` — cmd/go
//     invokes the binary per compilation unit with -V=full / -flags /
//     a JSON config file, handled by the unitchecker package.
package multichecker

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"

	"eta2lint/internal/analysis"
	"eta2lint/internal/load"
	"eta2lint/internal/unitchecker"
)

// Main dispatches between the vet protocol and the standalone driver and
// returns the process exit code: 0 clean, 1 error, 2 findings.
func Main(analyzers ...*analysis.Analyzer) int {
	args := os.Args[1:]

	// go vet handshake: identify the tool for the build cache. cmd/go
	// requires the trailing buildID= field; hashing the executable makes
	// cached vet results invalidate when the tool binary changes.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("eta2lint version devel buildID=%x\n", selfHash())
		return 0
	}
	// go vet handshake: declare (no) tool flags.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}
	// go vet per-unit invocation: a single JSON config argument.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unitchecker.Run(args[0], analyzers)
	}

	return standalone(args, analyzers)
}

// standalone loads the named packages (default ./...) and analyzes them.
func standalone(patterns []string, analyzers []*analysis.Analyzer) int {
	if len(patterns) > 0 && strings.HasPrefix(patterns[0], "-") {
		fmt.Fprintf(os.Stderr, "usage: eta2lint [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "eta2lint:", err)
		return 1
	}
	units, err := load.Packages(dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eta2lint:", err)
		return 1
	}
	found := false
	for _, u := range units {
		diags, err := analysis.RunAnalyzers(analyzers, u.Fset, u.Files, u.Pkg, u.Info)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eta2lint:", err)
			return 1
		}
		for _, d := range diags {
			found = true
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", u.Fset.Position(d.Pos), d.Message, d.Analyzer.Name)
		}
	}
	if found {
		return 2
	}
	return 0
}

// selfHash hashes the running executable for the -V=full build ID.
func selfHash() []byte {
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	return h.Sum(nil)
}

func firstLine(s string) string {
	line, _, _ := strings.Cut(s, "\n")
	return line
}
