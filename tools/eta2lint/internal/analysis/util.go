package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// IsTestFile reports whether f was parsed from a _test.go file.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}
