package analysis

import "strings"

// Directive syntax: a line comment of the form
//
//	//eta2:<name> optional free-text justification
//
// placed either at the end of the offending line or alone on the line
// directly above it. <name> is an analyzer's suppressor (for example
// "nondeterministic-ok" for maprange) or "<analyzer>-ok" for any
// analyzer. A justification after the name is encouraged and ignored by
// the tooling.
//
// Whitespace is tolerated everywhere a human plausibly writes it:
// "// eta2:<name>" (gofmt-style spaced comment), "//  eta2: <name>",
// and tab indentation all parse to the same directive. Historically the
// spaced forms were silently ignored, which turned an intended
// suppression into a phantom finding — or worse, let an author believe
// a site was audited when the analyzer never saw the annotation.

// ParseDirective extracts the directive name from a comment's raw text.
func ParseDirective(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, "//")
	if !ok {
		return "", false
	}
	rest = strings.TrimLeft(rest, " \t")
	rest, ok = strings.CutPrefix(rest, "eta2:")
	if !ok {
		return "", false
	}
	rest = strings.TrimLeft(rest, " \t")
	name, _, _ := strings.Cut(rest, " ")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", false
	}
	return name, true
}
