package analysis

import "strings"

// Directive syntax: a line comment of the form
//
//	//eta2:<name> optional free-text justification
//
// placed either at the end of the offending line or alone on the line
// directly above it. <name> is an analyzer's suppressor (for example
// "nondeterministic-ok" for maprange) or "<analyzer>-ok" for any
// analyzer. A justification after the name is encouraged and ignored by
// the tooling.

// ParseDirective extracts the directive name from a comment's raw text.
func ParseDirective(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, "//eta2:")
	if !ok {
		return "", false
	}
	name, _, _ := strings.Cut(rest, " ")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", false
	}
	return name, true
}
