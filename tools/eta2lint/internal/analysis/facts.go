package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Facts is the inter-procedural side channel of the analysis framework:
// each analyzer may export one opaque blob per package, and read the
// blobs it exported for the package's dependencies. The shape mirrors
// the x/tools facts mechanism at the transport level — facts ride the
// go vet vetx files, so `go vet -vettool` multi-package runs compose
// summaries across compilation units exactly the way x/tools facts do —
// but the payload is analyzer-defined (the callgraph engine uses JSON
// effect summaries).
//
// Contract: a blob must be self-contained for the package's whole
// transitive dependency cone (analyzers re-export what they read), so a
// reader only ever needs the blobs of its direct imports.
type Facts interface {
	// Read returns the blob analyzer exported for pkgPath, or nil when
	// the package is outside the analysis universe (standard library,
	// packages analyzed without facts support).
	Read(analyzer, pkgPath string) []byte
	// Export records the current package's blob for analyzer.
	Export(analyzer string, data []byte)
}

// MemFacts is the in-memory Facts store used by the standalone driver
// and the analysistest harness, where every package of the run shares
// one process.
type MemFacts struct {
	m map[string]map[string][]byte // analyzer -> pkgPath -> blob
}

// NewMemFacts allocates an empty store.
func NewMemFacts() *MemFacts { return &MemFacts{m: make(map[string]map[string][]byte)} }

// Read implements Facts over the store's map.
func (f *MemFacts) Read(analyzer, pkgPath string) []byte { return f.m[analyzer][pkgPath] }

// ExportFor records a blob for an explicit package path — the driver
// binds it to the package currently under analysis via factsFor.
func (f *MemFacts) ExportFor(analyzer, pkgPath string, data []byte) {
	byPkg := f.m[analyzer]
	if byPkg == nil {
		byPkg = make(map[string][]byte)
		f.m[analyzer] = byPkg
	}
	byPkg[pkgPath] = data
}

// For scopes the store to one package under analysis: Export lands under
// that package's path.
func (f *MemFacts) For(pkgPath string) Facts { return factsFor{f, pkgPath} }

type factsFor struct {
	store *MemFacts
	pkg   string
}

func (f factsFor) Read(analyzer, pkgPath string) []byte { return f.store.Read(analyzer, pkgPath) }
func (f factsFor) Export(analyzer string, data []byte)  { f.store.ExportFor(analyzer, f.pkg, data) }

// ---- vetx serialization -------------------------------------------------
//
// A vetx file (the facts file cmd/go caches per compilation unit and
// hands to dependent units through PackageVetx) is a JSON object mapping
// analyzer name to its blob. JSON keeps the file greppable when
// debugging a cross-package finding; map keys marshal sorted, so the
// bytes are deterministic and build-cache friendly.

// EncodeVetx serializes one package's exported facts to a vetx file.
// An empty fact set still writes a valid (empty-object) file — cmd/go
// requires the file to exist.
func EncodeVetx(path string, byAnalyzer map[string][]byte) error {
	ordered := make(map[string][]byte, len(byAnalyzer))
	for k, v := range byAnalyzer {
		ordered[k] = v
	}
	data, err := json.Marshal(ordered)
	if err != nil {
		return fmt.Errorf("encode facts: %w", err)
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		return fmt.Errorf("write facts: %w", err)
	}
	return nil
}

// DecodeVetx parses a vetx file. A legacy empty file (written by
// pre-facts builds of this tool) decodes as no facts; real corruption is
// an error so a broken cache fails loudly instead of silently dropping
// cross-package findings.
func DecodeVetx(path string) (map[string][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read facts: %w", err)
	}
	if len(data) == 0 {
		return nil, nil
	}
	var byAnalyzer map[string][]byte
	if err := json.Unmarshal(data, &byAnalyzer); err != nil {
		return nil, fmt.Errorf("parse facts %s: %w", path, err)
	}
	return byAnalyzer, nil
}

// AnalyzerNames returns the sorted analyzer names present in a decoded
// vetx map — handy for deterministic debugging output.
func AnalyzerNames(byAnalyzer map[string][]byte) []string {
	names := make([]string, 0, len(byAnalyzer))
	for k := range byAnalyzer {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
