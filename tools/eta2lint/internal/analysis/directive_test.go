package analysis

import "testing"

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text string
		name string
		ok   bool
	}{
		{"//eta2:nondeterministic-ok order cannot matter", "nondeterministic-ok", true},
		{"//eta2:floatcmp-ok", "floatcmp-ok", true},
		{"//eta2:lockdiscipline-ok   padded justification  ", "lockdiscipline-ok", true},
		{"// eta2:floatcmp-ok space breaks the directive", "", false},
		{"//eta2:", "", false},
		{"// plain comment", "", false},
		{"//go:build linux", "", false},
	}
	for _, c := range cases {
		name, ok := ParseDirective(c.text)
		if name != c.name || ok != c.ok {
			t.Errorf("ParseDirective(%q) = %q, %v; want %q, %v", c.text, name, ok, c.name, c.ok)
		}
	}
}
