package analysis

import "testing"

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text string
		name string
		ok   bool
	}{
		{"//eta2:nondeterministic-ok order cannot matter", "nondeterministic-ok", true},
		{"//eta2:floatcmp-ok", "floatcmp-ok", true},
		{"//eta2:lockdiscipline-ok   padded justification  ", "lockdiscipline-ok", true},

		// Spaced / indented forms used to be silently ignored suppressions.
		{"// eta2:floatcmp-ok gofmt-style spaced comment", "floatcmp-ok", true},
		{"//  eta2:maprange-ok extra padding", "maprange-ok", true},
		{"//\teta2:maprange-ok tab indent", "maprange-ok", true},
		{"// eta2: floatcmp-ok space after the colon", "floatcmp-ok", true},
		{"//eta2:  replaypurity-ok double space after colon", "replaypurity-ok", true},
		{"// \t eta2: \t journalfirst-ok mixed whitespace", "journalfirst-ok", true},

		// Non-directives must stay non-directives.
		{"//eta2:", "", false},
		{"// eta2:", "", false},
		{"//eta2:   ", "", false},
		{"// plain comment", "", false},
		{"//go:build linux", "", false},
		{"// the //eta2:maprange-ok directive is documented here", "", false},
		{"//	//eta2:maprange-ok doc-comment example", "", false},
		{"/* eta2:floatcmp-ok block comments are not directives */", "", false},
		{"// eta3:floatcmp-ok wrong prefix", "", false},
	}
	for _, c := range cases {
		name, ok := ParseDirective(c.text)
		if name != c.name || ok != c.ok {
			t.Errorf("ParseDirective(%q) = %q, %v; want %q, %v", c.text, name, ok, c.name, c.ok)
		}
	}
}
