// Package analysis is a deliberately small, dependency-free subset of the
// golang.org/x/tools/go/analysis API: enough structure to write modular
// AST+types analyzers, run them from a multichecker binary or the go vet
// -vettool protocol, and test them with the analysistest-style harness in
// this module. The shape (Analyzer, Pass, Diagnostic) mirrors x/tools so
// the analyzers port verbatim if the dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and directives.
	Name string
	// Doc is the one-paragraph description shown by -help.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
	// Suppressors are the //eta2: directive names that silence this
	// analyzer's diagnostics at a site (e.g. "nondeterministic-ok").
	// Every analyzer also honors "<Name>-ok".
	Suppressors []string
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// Pass carries one fully type-checked package through an analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives diagnostics that survived directive suppression.
	Report func(Diagnostic)

	// facts is the inter-procedural side channel (nil when the driver
	// runs without facts support); see facts.go.
	facts Facts

	directives map[*ast.File]map[int][]string // line -> directive names
}

// ReadFact returns the blob this analyzer exported for a dependency
// package, or nil when the package is outside the analysis universe
// (standard library, facts-less driver). Analyzers use a nil return to
// tell "no summaries available" apart from "summaries say nothing".
func (p *Pass) ReadFact(pkgPath string) []byte {
	if p.facts == nil {
		return nil
	}
	return p.facts.Read(p.Analyzer.Name, pkgPath)
}

// ExportFact publishes the current package's blob for this analyzer so
// downstream packages can ReadFact it. No-op on facts-less drivers.
func (p *Pass) ExportFact(data []byte) {
	if p.facts == nil {
		return
	}
	p.facts.Export(p.Analyzer.Name, data)
}

// Reportf reports a diagnostic at pos unless an //eta2: directive on the
// same line — or alone on the line above — suppresses this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.suppressed(pos) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer})
}

// suppressed reports whether a directive covers the line of pos.
func (p *Pass) suppressed(pos token.Pos) bool {
	file := p.fileFor(pos)
	if file == nil {
		return false
	}
	line := p.Fset.Position(pos).Line
	dirs := p.fileDirectives(file)
	for _, l := range [2]int{line, line - 1} {
		for _, name := range dirs[l] {
			if p.matchesSuppressor(name) {
				return true
			}
		}
	}
	return false
}

// SuppressedAt exposes the directive check so analyzers with non-line
// granularity (e.g. per-function exemptions) can consult it directly.
func (p *Pass) SuppressedAt(pos token.Pos) bool { return p.suppressed(pos) }

// FuncSuppressed reports whether fn's doc comment (or the line holding
// `func`) carries a directive suppressing this analyzer — the way to
// exempt a whole function rather than a single statement.
func (p *Pass) FuncSuppressed(fn *ast.FuncDecl) bool {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if name, ok := ParseDirective(c.Text); ok && p.matchesSuppressor(name) {
				return true
			}
		}
	}
	return p.suppressed(fn.Pos())
}

func (p *Pass) matchesSuppressor(name string) bool {
	if name == p.Analyzer.Name+"-ok" {
		return true
	}
	for _, s := range p.Analyzer.Suppressors {
		if name == s {
			return true
		}
	}
	return false
}

func (p *Pass) fileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// fileDirectives lazily indexes the //eta2: directives of one file by the
// line they end on.
func (p *Pass) fileDirectives(f *ast.File) map[int][]string {
	if p.directives == nil {
		p.directives = make(map[*ast.File]map[int][]string)
	}
	if d, ok := p.directives[f]; ok {
		return d
	}
	d := make(map[int][]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if name, ok := ParseDirective(c.Text); ok {
				line := p.Fset.Position(c.Pos()).Line
				d[line] = append(d[line], name)
			}
		}
	}
	p.directives[f] = d
	return d
}

// RunAnalyzers executes each analyzer over the package and returns the
// surviving diagnostics sorted by position. Facts-less: analyzers see
// nil ReadFact results and exports vanish.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	return RunAnalyzersFacts(analyzers, fset, files, pkg, info, nil)
}

// RunAnalyzersFacts is RunAnalyzers with an inter-procedural facts
// channel: each analyzer reads the blobs it exported for the package's
// dependencies and exports one for this package.
func RunAnalyzersFacts(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, facts Facts) ([]Diagnostic, error) {

	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d Diagnostic) { out = append(out, d) },
			facts:     facts,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}
