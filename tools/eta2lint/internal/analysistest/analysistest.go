// Package analysistest is a stdlib-only harness in the style of
// golang.org/x/tools/go/analysis/analysistest: it loads a package from a
// GOPATH-shaped testdata tree (testdata/src/<importpath>), runs one
// analyzer over it, and checks the reported diagnostics against
// expectations written in the source as
//
//	code under test // want "regexp" "another regexp"
//
// Every diagnostic must match a want on its line, and every want must be
// matched by a diagnostic. Imports of other testdata packages resolve
// from source; standard-library imports resolve through the build
// cache's export data.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"eta2lint/internal/analysis"
	"eta2lint/internal/load"
)

// Run analyzes the package at testdata/src/<path> with a and reports
// mismatches between diagnostics and // want expectations on t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, path string) {
	t.Helper()
	RunDeps(t, testdata, a, path)
}

// RunDeps analyzes several testdata packages in order with one shared
// facts store and checks // want expectations across all of them. The
// earlier paths are dependencies of the later ones, analyzed first so
// their exported facts (inter-procedural summaries) are visible — the
// same dependencies-first scheduling cmd/go gives vet tools. Wants in
// dependency files are checked too, so a test can assert that a
// violation is reported only in the package that reaches it.
func RunDeps(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	abs, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatal(err)
	}
	imp := newImporter(filepath.Join(abs, "src"))
	facts := analysis.NewMemFacts()

	var fset *token.FileSet
	var allFiles []*ast.File
	var diags []analysis.Diagnostic
	for _, path := range paths {
		_, unit, err := imp.load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		ds, err := analysis.RunAnalyzersFacts([]*analysis.Analyzer{a},
			unit.fset, unit.files, unit.pkg, unit.info, facts.For(path))
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		fset = unit.fset
		allFiles = append(allFiles, unit.files...)
		diags = append(diags, ds...)
	}

	wants := collectWants(t, fset, allFiles)
	matched := make([]bool, len(wants))

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants parses `// want "re" ...` comments, keyed to their line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitQuoted(t, pos, rest) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp: %v", pos, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

// splitQuoted parses a sequence of Go-quoted strings.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		prefix, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("%s: malformed want clause %q", pos, s)
		}
		val, _ := strconv.Unquote(prefix)
		out = append(out, val)
		s = s[len(prefix):]
	}
}

// ---- testdata package loading ------------------------------------------

type unit struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// importer resolves testdata import paths from source and everything
// else (the standard library) from build-cache export data.
type importer struct {
	srcDir   string
	fset     *token.FileSet
	pkgs     map[string]*unit
	fallback *load.ExportImporter
}

func newImporter(srcDir string) *importer {
	fset := token.NewFileSet()
	return &importer{
		srcDir:   srcDir,
		fset:     fset,
		pkgs:     make(map[string]*unit),
		fallback: load.NewExportImporter(fset, nil),
	}
}

// Import implements types.Importer.
func (i *importer) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(i.srcDir, path); isDir(dir) {
		pkg, _, err := i.load(path)
		return pkg, err
	}
	return i.fallback.Import(path)
}

// load parses and type-checks one testdata package.
func (i *importer) load(path string) (*types.Package, *unit, error) {
	if u, ok := i.pkgs[path]; ok {
		return u.pkg, u, nil
	}
	dir := filepath.Join(i.srcDir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(i.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := load.NewInfo()
	conf := types.Config{Importer: i}
	pkg, err := conf.Check(path, i.fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	u := &unit{fset: i.fset, files: files, pkg: pkg, info: info}
	i.pkgs[path] = u
	return pkg, u, nil
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}
