package findings

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzFindingsRoundTrip feeds arbitrary bytes through Decode and, for
// every document that parses, checks the codec invariants the baseline
// workflow depends on:
//
//  1. Encode(Decode(x)) is accepted by Decode again and is a fixed
//     point: re-encoding the re-decoded findings yields identical bytes
//     (canonical form is stable).
//  2. Baseline matching is order-independent and a baseline built from
//     a run matches that run exactly — zero fresh, zero stale.
func FuzzFindingsRoundTrip(f *testing.F) {
	f.Add([]byte(`{"findings":[]}`))
	f.Add([]byte(`{"findings":[{"analyzer":"replaypurity","file":"journal.go","line":385,"col":17,"message":"replay determinism: call to time.Now"}]}`))
	f.Add([]byte(`{"findings":[` +
		`{"analyzer":"snapshotimmutability","file":"a.go","line":1,"message":"dup"},` +
		`{"analyzer":"snapshotimmutability","file":"a.go","line":9,"message":"dup"},` +
		`{"analyzer":"maprange","file":"b,c.go","line":2,"col":3,"message":"50% of runs\ndiverge: order"}]}`))
	f.Add([]byte(`{"findings":null}`))
	f.Add([]byte(`{"findings":[{"analyzer":"","file":""}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		fs, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // invalid documents just need to be rejected cleanly
		}

		var enc bytes.Buffer
		if err := Encode(&enc, fs); err != nil {
			t.Fatalf("Encode(decoded) failed: %v", err)
		}
		first := enc.String()
		fs2, err := Decode(strings.NewReader(first))
		if err != nil {
			t.Fatalf("Decode(Encode(decoded)) failed: %v\ndocument:\n%s", err, first)
		}
		if len(fs2) != len(fs) {
			t.Fatalf("round trip changed finding count: %d -> %d", len(fs), len(fs2))
		}
		var enc2 bytes.Buffer
		if err := Encode(&enc2, fs2); err != nil {
			t.Fatalf("re-Encode failed: %v", err)
		}
		if second := enc2.String(); second != first {
			t.Fatalf("canonical form is not a fixed point:\nfirst:\n%s\nsecond:\n%s", first, second)
		}

		// A baseline built from the run covers it exactly, regardless of
		// the order either side is presented in.
		reversed := make([]Finding, len(fs))
		for i, f := range fs {
			reversed[len(fs)-1-i] = f
		}
		fresh, stale := NewBaseline(reversed).Filter(fs)
		if len(fresh) != 0 || stale != 0 {
			t.Fatalf("self-baseline mismatch: fresh=%d stale=%d", len(fresh), stale)
		}
	})
}
