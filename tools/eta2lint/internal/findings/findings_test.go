package findings

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sample() []Finding {
	return []Finding{
		{Analyzer: "replaypurity", File: "journal.go", Line: 12, Col: 3, Message: "calls time.Now"},
		{Analyzer: "replaypurity", File: "journal.go", Line: 40, Col: 9, Message: "range over map"},
		{Analyzer: "snapshotimmutability", File: "state.go", Line: 7, Col: 1, Message: "write after publish"},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	Sort(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestEncodeDeterministicAcrossOrder(t *testing.T) {
	fs := sample()
	var a, b bytes.Buffer
	if err := Encode(&a, fs); err != nil {
		t.Fatal(err)
	}
	rev := []Finding{fs[2], fs[0], fs[1]}
	if err := Encode(&b, rev); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("encoding depends on input order:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestEncodeEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[]") {
		t.Fatalf("empty findings must encode as [], got %s", buf.String())
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("want no findings, got %+v", got)
	}
}

func TestDecodeRejectsMissingFields(t *testing.T) {
	_, err := Decode(strings.NewReader(`{"findings":[{"file":"x.go","line":1,"message":"m"}]}`))
	if err == nil {
		t.Fatal("want error for finding without analyzer")
	}
	_, err = Decode(strings.NewReader(`{"findings":`))
	if err == nil {
		t.Fatal("want error for truncated document")
	}
}

func TestBaselineFilterOrderIndependent(t *testing.T) {
	base := NewBaseline(sample())

	// Same findings, shifted lines, shuffled order: all covered.
	cur := []Finding{
		{Analyzer: "snapshotimmutability", File: "state.go", Line: 99, Message: "write after publish"},
		{Analyzer: "replaypurity", File: "journal.go", Line: 1, Message: "range over map"},
		{Analyzer: "replaypurity", File: "journal.go", Line: 2, Message: "calls time.Now"},
	}
	fresh, stale := base.Filter(cur)
	if len(fresh) != 0 || stale != 0 {
		t.Fatalf("want all covered, got fresh=%+v stale=%d", fresh, stale)
	}
}

func TestBaselineFilterNewAndStale(t *testing.T) {
	base := NewBaseline(sample())
	cur := []Finding{
		{Analyzer: "replaypurity", File: "journal.go", Line: 12, Message: "calls time.Now"},
		{Analyzer: "replaypurity", File: "server.go", Line: 5, Message: "spawns goroutine"}, // new
	}
	fresh, stale := base.Filter(cur)
	if len(fresh) != 1 || fresh[0].File != "server.go" {
		t.Fatalf("want exactly the new finding, got %+v", fresh)
	}
	if stale != 2 {
		t.Fatalf("want 2 stale baseline entries, got %d", stale)
	}
}

func TestBaselineMultiset(t *testing.T) {
	// Two identical findings in the baseline cover exactly two, not three.
	dup := Finding{Analyzer: "a", File: "f.go", Message: "m"}
	base := NewBaseline([]Finding{dup, dup})
	fresh, _ := base.Filter([]Finding{dup, dup, dup})
	if len(fresh) != 1 {
		t.Fatalf("multiset semantics: want 1 uncovered duplicate, got %d", len(fresh))
	}
}

func TestGitHubAnnotationEscaping(t *testing.T) {
	f := Finding{
		Analyzer: "replaypurity",
		File:     "a,b.go",
		Line:     3,
		Col:      7,
		Message:  "50% of runs\ndiverge: order",
	}
	got := GitHubAnnotation(f)
	want := "::error file=a%2Cb.go,line=3,col=7,title=eta2lint(replaypurity)::50%25 of runs%0Adiverge: order"
	if got != want {
		t.Fatalf("annotation:\n got %q\nwant %q", got, want)
	}
}
