// Package findings is the machine-readable side of eta2lint: a stable
// JSON schema for diagnostics (`eta2lint -json`), an order-independent
// baseline matcher so pre-existing accepted findings don't fail the
// build while new violations do, and GitHub Actions workflow-command
// formatting so CI surfaces findings as inline annotations.
package findings

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Finding is one diagnostic in the -json output and the baseline file.
type Finding struct {
	Analyzer string `json:"analyzer"`
	// File is the diagnostic's file path as reported by the loader
	// (module-relative in CI, where the driver runs at the module root).
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col,omitempty"`
	Message string `json:"message"`
}

// Report is the top-level -json document. Findings are sorted so the
// bytes are deterministic for identical runs.
type Report struct {
	Findings []Finding `json:"findings"`
}

// Sort orders findings by (file, line, col, analyzer, message) — the
// canonical encode order.
func Sort(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Encode writes the canonical JSON document for fs: sorted, one finding
// per line, trailing newline. A nil or empty slice encodes an empty
// (non-null) findings array so consumers can range without nil checks.
func Encode(w io.Writer, fs []Finding) error {
	sorted := make([]Finding, len(fs))
	copy(sorted, fs)
	Sort(sorted)
	var b strings.Builder
	b.WriteString("{\"findings\":[")
	for i, f := range sorted {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n  ")
		line, err := json.Marshal(f)
		if err != nil {
			return fmt.Errorf("findings: encode: %w", err)
		}
		b.Write(line)
	}
	if len(sorted) > 0 {
		b.WriteString("\n")
	}
	b.WriteString("]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Decode parses a -json document (and therefore a baseline file).
func Decode(r io.Reader) ([]Finding, error) {
	var rep Report
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("findings: decode: %w", err)
	}
	for i, f := range rep.Findings {
		if f.Analyzer == "" || f.File == "" {
			return nil, fmt.Errorf("findings: entry %d missing analyzer or file", i)
		}
	}
	return rep.Findings, nil
}

// key identifies a finding for baseline matching. Line and column are
// deliberately excluded: a baseline must survive unrelated edits that
// shift code up or down, so a finding is "the same" when the analyzer,
// file, and message agree. Multiset semantics handle several identical
// messages in one file.
func key(f Finding) string {
	return f.Analyzer + "\x00" + f.File + "\x00" + f.Message
}

// Baseline is a committed set of accepted findings.
type Baseline struct {
	counts map[string]int
}

// NewBaseline builds a baseline from its findings. Order is irrelevant.
func NewBaseline(fs []Finding) *Baseline {
	b := &Baseline{counts: make(map[string]int, len(fs))}
	for _, f := range fs {
		b.counts[key(f)]++
	}
	return b
}

// Filter splits current findings into new ones (not covered by the
// baseline — these fail the build) and returns the number of stale
// baseline entries (accepted findings that no longer occur — a nudge to
// re-run the baseline update so the file doesn't rot). Matching is a
// multiset subtraction, so it is independent of the order of both the
// baseline file and the current run.
func (b *Baseline) Filter(fs []Finding) (fresh []Finding, stale int) {
	remaining := make(map[string]int, len(b.counts))
	for k, n := range b.counts {
		remaining[k] = n
	}
	for _, f := range fs {
		k := key(f)
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	for _, n := range remaining {
		stale += n
	}
	return fresh, stale
}

// GitHubAnnotation renders a finding as a GitHub Actions workflow
// command — printed to stdout inside an Actions run, it becomes an
// inline ::error annotation on the file/line in the PR diff. Newlines
// and the characters the workflow-command grammar reserves are escaped
// per the Actions spec.
func GitHubAnnotation(f Finding) string {
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=eta2lint(%s)::%s",
		escapeProperty(f.File), f.Line, f.Col, escapeProperty(f.Analyzer), escapeData(f.Message))
}

// escapeData escapes the message portion of a workflow command.
func escapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// escapeProperty escapes a property value of a workflow command.
func escapeProperty(s string) string {
	s = escapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}
