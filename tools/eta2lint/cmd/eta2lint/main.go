// Command eta2lint runs the ETA² project-invariant analyzers, either
// standalone (`eta2lint ./...`) or as a `go vet -vettool`.
package main

import (
	"os"

	"eta2lint/internal/multichecker"
	"eta2lint/passes/allocdiscipline"
	"eta2lint/passes/floatcmp"
	"eta2lint/passes/journalfirst"
	"eta2lint/passes/lockdiscipline"
	"eta2lint/passes/maprange"
	"eta2lint/passes/metrichygiene"
	"eta2lint/passes/replaypurity"
	"eta2lint/passes/snapshotimmutability"
	"eta2lint/passes/spandiscipline"
)

func main() {
	os.Exit(multichecker.Main(
		maprange.Analyzer,
		lockdiscipline.Analyzer,
		journalfirst.Analyzer,
		floatcmp.Analyzer,
		metrichygiene.Analyzer,
		allocdiscipline.Analyzer,
		spandiscipline.Analyzer,
		replaypurity.Analyzer,
		snapshotimmutability.Analyzer,
	))
}
