module eta2lint

go 1.22
