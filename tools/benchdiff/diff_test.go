package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, r report) {
	t.Helper()
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func lat(count int64, p99 float64) latency { return latency{Count: count, P99ms: p99} }

func TestLoadReportsOrderAndFilter(t *testing.T) {
	dir := t.TempDir()
	writeReport(t, dir, "BENCH_PR10.json", report{Preset: "a"})
	writeReport(t, dir, "BENCH_PR2.json", report{Preset: "b"})
	writeReport(t, dir, "BENCH_PR2_readpath.json", report{Preset: "c"})
	if err := os.WriteFile(filepath.Join(dir, "BENCH_notes.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bench_smoke.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	reports, err := loadReports(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, r := range reports {
		names = append(names, r.File)
	}
	want := []string{"BENCH_PR2.json", "BENCH_PR2_readpath.json", "BENCH_PR10.json"}
	if len(names) != len(want) {
		t.Fatalf("loaded %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("loaded %v, want %v", names, want)
		}
	}
	if reports[2].PR != 10 {
		t.Errorf("BENCH_PR10.json parsed as PR %d", reports[2].PR)
	}
}

func TestCompareMatchesOnFullKnobTuple(t *testing.T) {
	old := &report{
		PR: 6, File: "BENCH_PR6.json",
		Preset: "read-mostly", Fsync: "always", FsyncDelayMS: 2, ReadFraction: 0.95, Batch: 4,
		Scenarios: []scenario{
			{Mode: "concurrent", Clients: 8, Writes: lat(1000, 10), Reads: lat(1000, 2)},
		},
	}
	sameKnobs := &report{
		PR: 8, File: "BENCH_PR8_readpath.json",
		Preset: "read-mostly", Fsync: "always", FsyncDelayMS: 2, ReadFraction: 0.95, Batch: 4,
		Scenarios: []scenario{
			{Mode: "concurrent", Clients: 8, Writes: lat(1000, 11), Reads: lat(1000, 2.1)},
			{Mode: "concurrent", Clients: 64, Writes: lat(1000, 30), Reads: lat(1000, 9)},
		},
	}
	otherPreset := &report{
		PR: 8, File: "BENCH_PR8.json",
		Preset: "ingest-heavy", Fsync: "interval", ReadFraction: 0.05, Batch: 16,
		Scenarios: []scenario{
			{Mode: "concurrent", Clients: 8, Writes: lat(1000, 99), Reads: lat(1000, 99)},
		},
	}
	comps := compare([]*report{old, otherPreset, sameKnobs}, 20)
	if len(comps) != 3 {
		t.Fatalf("got %d comparisons, want 3", len(comps))
	}
	// The ingest-heavy scenario and the new clients=64 row have no baseline.
	for _, c := range comps {
		switch {
		case c.File == "BENCH_PR8.json":
			if c.BaseFile != "" {
				t.Errorf("ingest-heavy matched baseline %s despite different knobs", c.BaseFile)
			}
		case c.Key.Clients == 64:
			if c.BaseFile != "" {
				t.Errorf("new clients=64 scenario matched baseline %s", c.BaseFile)
			}
		default:
			if c.BaseFile != "BENCH_PR6.json" {
				t.Errorf("read-path scenario baseline = %q, want BENCH_PR6.json", c.BaseFile)
			}
			if c.WriteRatio < 1.09 || c.WriteRatio > 1.11 {
				t.Errorf("write ratio %g, want ~1.10", c.WriteRatio)
			}
			if c.regressed(gate{Threshold: 0.25, MinDeltaMS: 5}) {
				t.Error("+10% flagged as regression at 25% threshold")
			}
			if !c.regressed(gate{Threshold: 0.05, MinDeltaMS: 0.5}) {
				t.Error("+10%/+1ms not flagged at 5%/0.5ms gate")
			}
		}
	}
}

func TestCompareUsesNewestComparableBaseline(t *testing.T) {
	mk := func(pr int, file string, p99 float64) *report {
		return &report{
			PR: pr, File: file, Preset: "read-mostly", Fsync: "always", ReadFraction: 0.95, Batch: 4,
			Scenarios: []scenario{{Mode: "concurrent", Clients: 8, Writes: lat(1000, p99), Reads: lat(1000, 1)}},
		}
	}
	comps := compare([]*report{mk(3, "BENCH_PR3.json", 4), mk(6, "BENCH_PR6.json", 10), mk(8, "BENCH_PR8.json", 11)}, 20)
	last := comps[len(comps)-1]
	if last.BaseFile != "BENCH_PR6.json" {
		t.Errorf("PR8 baseline = %q, want the nearest older comparable file BENCH_PR6.json", last.BaseFile)
	}
	// +10% vs PR6 even though it is +175% vs PR3: trajectory is judged
	// stepwise, so gradual drift is each PR's own regression to own.
	if last.regressed(gate{Threshold: 0.25, MinDeltaMS: 5}) {
		t.Error("stepwise +10% flagged as regression")
	}
}

func TestRegressionDetection(t *testing.T) {
	g := gate{Threshold: 0.25, MinDeltaMS: 5}
	old := &report{
		PR: 7, File: "BENCH_PR7.json", Preset: "p", Fsync: "always", Batch: 4,
		Scenarios: []scenario{{Mode: "m", Clients: 1, Writes: lat(1000, 20), Reads: lat(1000, 20)}},
	}
	bad := &report{
		PR: 8, File: "BENCH_PR8.json", Preset: "p", Fsync: "always", Batch: 4,
		Scenarios: []scenario{{Mode: "m", Clients: 1, Writes: lat(1000, 20.1), Reads: lat(1000, 28)}},
	}
	comps := compare([]*report{old, bad}, 20)
	if len(comps) != 1 || !comps[0].regressed(g) {
		t.Fatalf("read p99 +40%%/+8ms not flagged: %+v", comps)
	}
	if got := comps[0].format(g); !containsAll(got, "REGRESSED", "read p99", "BENCH_PR7.json") {
		t.Errorf("format output %q missing expected parts", got)
	}
}

// TestAbsoluteFloorMutesSubMillisecondNoise: a huge relative swing on a
// tiny absolute latency is scheduler noise, not a regression.
func TestAbsoluteFloorMutesSubMillisecondNoise(t *testing.T) {
	old := &report{
		PR: 7, File: "BENCH_PR7.json", Preset: "p", Fsync: "always", Batch: 4,
		Scenarios: []scenario{{Mode: "m", Clients: 1, Writes: lat(1000, 0.2), Reads: lat(1000, 0.2)}},
	}
	noisy := &report{
		PR: 8, File: "BENCH_PR8.json", Preset: "p", Fsync: "always", Batch: 4,
		Scenarios: []scenario{{Mode: "m", Clients: 1, Writes: lat(1000, 0.4), Reads: lat(1000, 0.2)}},
	}
	comps := compare([]*report{old, noisy}, 20)
	if comps[0].regressed(gate{Threshold: 0.25, MinDeltaMS: 5}) {
		t.Error("+100% on a 0.2ms p99 flagged despite the 5ms absolute floor")
	}
	if !comps[0].regressed(gate{Threshold: 0.25, MinDeltaMS: 0.1}) {
		t.Error("same shift not flagged once the floor drops below the delta")
	}
}

func TestLowCountScenariosSkipped(t *testing.T) {
	old := &report{
		PR: 7, File: "BENCH_PR7.json", Preset: "p", Fsync: "always", Batch: 4,
		Scenarios: []scenario{{Mode: "m", Clients: 1, Writes: lat(5, 1), Reads: lat(1000, 10)}},
	}
	cur := &report{
		PR: 8, File: "BENCH_PR8.json", Preset: "p", Fsync: "always", Batch: 4,
		Scenarios: []scenario{{Mode: "m", Clients: 1, Writes: lat(1000, 50), Reads: lat(1000, 10)}},
	}
	comps := compare([]*report{old, cur}, 20)
	if comps[0].WriteRatio != 0 {
		t.Errorf("write ratio %g computed from a 5-request baseline; want skipped", comps[0].WriteRatio)
	}
	if comps[0].regressed(gate{Threshold: 0.25, MinDeltaMS: 5}) {
		t.Error("skipped comparison flagged as regression")
	}
}

// TestCommittedTrajectoryParses guards the real committed files: whatever
// BENCH_PR*.json the repo carries must parse and pass the default gate.
func TestCommittedTrajectoryParses(t *testing.T) {
	reports, err := loadReports("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) < 2 {
		t.Skipf("only %d committed reports", len(reports))
	}
	g := gate{Threshold: 0.25, MinDeltaMS: 5}
	for _, c := range compare(reports, 20) {
		t.Log(c.format(g))
		if c.regressed(g) {
			t.Errorf("committed trajectory regression: %s", c.format(g))
		}
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}
