package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// report mirrors the slice of the loadgen JSON schema benchdiff needs;
// unknown fields are ignored so the reports can keep growing.
type report struct {
	PR   int    `json:"-"`
	File string `json:"-"`

	Preset       string     `json:"preset"`
	Fsync        string     `json:"fsync"`
	FsyncDelayMS float64    `json:"fsync_delay_ms"`
	ReadFraction float64    `json:"read_fraction"`
	Batch        int        `json:"batch"`
	Scenarios    []scenario `json:"scenarios"`
}

type scenario struct {
	Mode    string  `json:"mode"`
	Clients int     `json:"clients"`
	Writes  latency `json:"writes"`
	Reads   latency `json:"reads"`
}

type latency struct {
	Count int64   `json:"count"`
	P99ms float64 `json:"p99_ms"`
}

// key is the scenario-matching tuple: two scenarios are comparable only
// when every benchmark knob that shapes the workload is identical.
type key struct {
	Preset       string
	Fsync        string
	FsyncDelayMS float64
	ReadFraction float64
	Batch        int
	Mode         string
	Clients      int
}

func (r *report) key(s scenario) key {
	return key{
		Preset:       r.Preset,
		Fsync:        r.Fsync,
		FsyncDelayMS: r.FsyncDelayMS,
		ReadFraction: r.ReadFraction,
		Batch:        r.Batch,
		Mode:         s.Mode,
		Clients:      s.Clients,
	}
}

var benchFile = regexp.MustCompile(`^BENCH_PR(\d+)(?:_[A-Za-z0-9-]+)?\.json$`)

// loadReports reads every BENCH_PR<n>[_tag].json in dir, ordered by PR
// number (ties broken by file name for determinism).
func loadReports(dir string) ([]*report, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var reports []*report
	for _, e := range entries {
		m := benchFile.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		pr, err := strconv.Atoi(m[1])
		if err != nil {
			return nil, fmt.Errorf("%s: %v", e.Name(), err)
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		r := &report{PR: pr, File: e.Name()}
		if err := json.Unmarshal(raw, r); err != nil {
			return nil, fmt.Errorf("%s: %v", e.Name(), err)
		}
		reports = append(reports, r)
	}
	sort.Slice(reports, func(i, j int) bool {
		if reports[i].PR != reports[j].PR {
			return reports[i].PR < reports[j].PR
		}
		return reports[i].File < reports[j].File
	})
	return reports, nil
}

// comparison is one scenario of one report judged against its baseline.
// A nil baseline means no older PR ran a comparable scenario.
type comparison struct {
	File     string
	Key      key
	BaseFile string
	// WriteRatio/ReadRatio are new/old p99; 0 means not compared (no
	// baseline, or too few requests on either side to trust a p99).
	// WriteDeltaMS/ReadDeltaMS are the absolute new-old p99 shifts.
	WriteRatio   float64
	ReadRatio    float64
	WriteDeltaMS float64
	ReadDeltaMS  float64
}

// gate is the pass/fail policy: a scenario regresses only when its p99
// worsens by more than Threshold relatively AND MinDeltaMS absolutely.
// The absolute floor keeps sub-millisecond scenarios from flapping the
// gate — at a 0.2ms read p99, +30% is 0.06ms of scheduler noise, while
// any regression large enough to matter clears a few milliseconds.
type gate struct {
	Threshold  float64
	MinDeltaMS float64
}

func (g gate) bad(ratio, deltaMS float64) bool {
	return ratio > 1+g.Threshold && deltaMS > g.MinDeltaMS
}

func (c comparison) regressed(g gate) bool {
	return g.bad(c.WriteRatio, c.WriteDeltaMS) || g.bad(c.ReadRatio, c.ReadDeltaMS)
}

func (c comparison) format(g gate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s/%s clients=%d", c.File, c.Key.Preset, c.Key.Mode, c.Key.Clients)
	if c.BaseFile == "" {
		b.WriteString(": no comparable baseline")
		return b.String()
	}
	fmt.Fprintf(&b, " vs %s:", c.BaseFile)
	part := func(name string, ratio, deltaMS float64) {
		if ratio == 0 { //eta2:floatcmp-ok 0 is the exact sentinel ratio() returns for "skipped", never a computed value
			fmt.Fprintf(&b, " %s p99 skipped (too few requests)", name)
			return
		}
		mark := "ok"
		if g.bad(ratio, deltaMS) {
			mark = "REGRESSED"
		}
		fmt.Fprintf(&b, " %s p99 %+.1f%% (%+.2fms) %s", name, (ratio-1)*100, deltaMS, mark)
	}
	part("write", c.WriteRatio, c.WriteDeltaMS)
	part("read", c.ReadRatio, c.ReadDeltaMS)
	return b.String()
}

// compare judges every scenario of every report except the oldest against
// the newest older report that ran the identical knob tuple.
func compare(reports []*report, minCount int) []comparison {
	var comps []comparison
	for i, r := range reports {
		if i == 0 {
			continue
		}
		for _, s := range r.Scenarios {
			k := r.key(s)
			c := comparison{File: r.File, Key: k}
			// Walk older reports newest-first; the freshest comparable
			// run is the fairest baseline.
			for j := i - 1; j >= 0; j-- {
				base, ok := findScenario(reports[j], k)
				if !ok {
					continue
				}
				c.BaseFile = reports[j].File
				c.WriteRatio = ratio(base.Writes, s.Writes, minCount)
				c.ReadRatio = ratio(base.Reads, s.Reads, minCount)
				c.WriteDeltaMS = s.Writes.P99ms - base.Writes.P99ms
				c.ReadDeltaMS = s.Reads.P99ms - base.Reads.P99ms
				break
			}
			comps = append(comps, c)
		}
	}
	return comps
}

func findScenario(r *report, k key) (scenario, bool) {
	for _, s := range r.Scenarios {
		if r.key(s) == k { //eta2:floatcmp-ok exact knob match: both sides are the same JSON-decoded values, not computed floats
			return s, true
		}
	}
	return scenario{}, false
}

func ratio(old, cur latency, minCount int) float64 {
	if old.Count < int64(minCount) || cur.Count < int64(minCount) || old.P99ms <= 0 {
		return 0
	}
	return cur.P99ms / old.P99ms
}
