// Command benchdiff compares the committed BENCH_PR*.json trajectory and
// fails when a newer report regresses against the most recent comparable
// older one. It is the CI guard that keeps the benchmark files honest: a
// PR that commits a new BENCH_PR<n>.json with a write or read p99 more
// than -threshold worse than its predecessor's matching scenario exits
// non-zero.
//
// Scenarios are matched across files on the full knob tuple — preset,
// fsync policy, fsync delay, read fraction, batch size, mode, and client
// count — so an ingest-heavy report is never judged against a read-mostly
// one. For each scenario the baseline is the newest older PR that ran the
// identical tuple; scenarios with no comparable predecessor (a new preset,
// a new client count) are reported but not judged.
//
// A regression must clear both the relative threshold and an absolute
// millisecond floor: single-run p99s at sub-millisecond latencies swing
// tens of percent on scheduler noise alone, and a gate that flaps is a
// gate that gets deleted.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	dir := flag.String("dir", ".", "directory holding BENCH_PR*.json files")
	threshold := flag.Float64("threshold", 0.25, "allowed fractional p99 regression before failing (0.25 = +25%)")
	minDelta := flag.Float64("min-delta-ms", 5, "ignore p99 regressions smaller than this many milliseconds absolute")
	minCount := flag.Int("min-count", 20, "skip p99 comparison when either side measured fewer requests than this")
	flag.Parse()

	reports, err := loadReports(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(reports) < 2 {
		fmt.Printf("benchdiff: %d report(s) in %s; nothing to compare\n", len(reports), *dir)
		return
	}
	g := gate{Threshold: *threshold, MinDeltaMS: *minDelta}
	comps := compare(reports, *minCount)
	failed := false
	for _, c := range comps {
		fmt.Println(c.format(g))
		if c.regressed(g) {
			failed = true
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: p99 regression beyond +%.0f%% (and %.0fms) detected\n", *threshold*100, *minDelta)
		os.Exit(1)
	}
}
