package eta2

import (
	"sync/atomic"
	"time"

	"eta2/internal/truth"
	"eta2/internal/wal"
)

// serverState is the immutable read snapshot behind the server's lock-free
// query surface (DESIGN.md §13). Every committed mutation publishes a fresh
// serverState via publishLocked; readers load the pointer once and read
// freely — nothing reachable from a published serverState is ever mutated
// again:
//
//   - users, domainOf and truths are copy-on-write: the writers that change
//     them (AddUsers, CreateTasks, CloseTimeStep) build a fresh map and swap
//     it in, so the map a reader holds is frozen.
//   - store is replace-on-write: CloseTimeStep commits into a Clone and
//     swaps the pointer, and CreateTasks clones before folding domain
//     merges. The published *truth.Store is only ever read.
//   - the scalar fields are plain copies.
//
// The journal pointer is included so DurabilityStats and journalCommit run
// without touching s.mu; wal.Log has its own internal synchronization and
// tolerates Stats/Commit after Close.
type serverState struct {
	users    map[UserID]User
	domainOf map[TaskID]DomainID
	truths   map[TaskID]TruthEstimate
	store    *truth.Store
	day      int
	numTasks int

	journal        *wal.Log
	journalDir     string
	lastLSN        uint64
	snapLSN        uint64
	compactions    int
	lastCompaction time.Time

	// Replication role (see replication.go). role only ever transitions
	// follower → primary (promotion), never back, so a writability check
	// against one published snapshot cannot be invalidated into accepting
	// a write on a node that is still a follower.
	role        serverRole
	primaryAddr string

	// domainCount caches numDomains() for this snapshot: 0 means not yet
	// computed, anything else is count+1. domainOf is frozen once the
	// snapshot is published, so the count is computed at most once per
	// snapshot instead of allocating a scratch set on every read.
	domainCount atomic.Int64
}

// numDomains counts the distinct domains assigned in this snapshot. The
// first caller pays the O(tasks) scan; concurrent first callers compute the
// same value, so the racing Store is idempotent.
func (st *serverState) numDomains() int {
	if v := st.domainCount.Load(); v != 0 {
		return int(v - 1)
	}
	seen := make(map[DomainID]struct{}) //eta2:allocdiscipline-ok once per published snapshot, not per request
	for _, d := range st.domainOf {
		seen[d] = struct{}{}
	}
	st.domainCount.Store(int64(len(seen)) + 1)
	return len(seen)
}

// publishLocked installs the current master state as the new immutable read
// snapshot and refreshes the server-shape gauges. It is the ONLY place that
// may store to s.state (enforced by the lockdiscipline analyzer): every
// writer calls it exactly once per committed mutation batch, with s.mu
// write-held — or before the server is shared, during construction and
// recovery, where no lock is needed.
func (s *Server) publishLocked() {
	s.state.Store(&serverState{
		users:          s.users,
		domainOf:       s.domainOf,
		truths:         s.truths,
		store:          s.store,
		day:            s.day,
		numTasks:       len(s.tasks),
		journal:        s.journal,
		journalDir:     s.journalDir,
		lastLSN:        s.lastLSN,
		snapLSN:        s.snapLSN,
		compactions:    s.compactions,
		lastCompaction: s.lastCompaction,
		role:           s.role,
		primaryAddr:    s.primaryAddr,
	})
	mSnapshotPublishes.Inc()
	mSnapshotPublishTS.Set(float64(time.Now().UnixNano()) / 1e9) //eta2:replaypurity-ok freshness gauge, not replayed state
	s.publishMetricsLocked()
}

// loadState returns the current read snapshot. The pointer is never nil:
// newServer and restoreServer publish before the server escapes.
func (s *Server) loadState() *serverState {
	return s.state.Load()
}
