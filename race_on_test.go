//go:build race

package eta2

// raceEnabled reports whether the race detector is compiled in. Its
// instrumentation allocates on paths that are allocation-free in normal
// builds, so the exact alloc-count gates skip themselves under -race
// (the race run still executes the same code for data-race coverage).
const raceEnabled = true
