package eta2

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"eta2/internal/cluster"
	"eta2/internal/core"
	"eta2/internal/embedding"
	"eta2/internal/semantic"
	"eta2/internal/truth"
)

// stateVersion guards against loading snapshots from incompatible builds.
const stateVersion = 1

// snapshotState is the serializable snapshot of a Server, written either
// as JSON (SaveState, legacy snapshot-<lsn>.json files) or with the binary
// codec in codec.go (SaveStateBinary, compaction's snapshot-<lsn>.bin
// files). The embedding model itself is not serialized — only the task
// vectors derived from it — so a restored server needs WithEmbedder again
// only to create NEW described tasks.
type snapshotState struct {
	Version int `json:"version"`

	Alpha   float64 `json:"alpha"`
	Gamma   float64 `json:"gamma"`
	Epsilon float64 `json:"epsilon"`

	Users     []core.User   `json:"users"`
	UserOrder []core.UserID `json:"user_order"`

	Tasks    []core.Task              `json:"tasks"`
	DomainOf map[TaskID]DomainID      `json:"domain_of"`
	Pending  []TaskID                 `json:"pending"`
	Truths   map[TaskID]TruthEstimate `json:"truths"`
	Day      int                      `json:"day"`

	Observations []Observation `json:"observations,omitempty"`

	Store truth.StoreState `json:"store"`

	// Clustering state; empty when the server runs without an embedder.
	Cluster    *cluster.EngineState `json:"cluster,omitempty"`
	Vectors    []taskVectorState    `json:"vectors,omitempty"`
	ItemToTask []TaskID             `json:"item_to_task,omitempty"`
}

type taskVectorState struct {
	Query  []float64 `json:"q"`
	Target []float64 `json:"t"`
}

// SaveState serializes the server's full state (tasks, domains, learned
// expertise, clustering structure, pending observations) as JSON. The
// embedding model is not included; see LoadServer. SaveStateBinary writes
// the same state with the compact binary codec; LoadServer reads both.
func (s *Server) SaveState(w io.Writer) error {
	s.mu.RLock()
	st := s.persistStateLocked()
	s.mu.RUnlock()
	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	if err := enc.Encode(st); err != nil {
		return fmt.Errorf("eta2: save state: %w", err)
	}
	mSnapshotBytesJSON.Observe(float64(cw.n))
	return nil
}

// SaveStateBinary serializes the server's full state with the
// length-prefixed, CRC-checked binary codec — the format compaction uses
// for its snapshot files. It carries exactly the information SaveState
// does, at a fraction of the encode cost and size; LoadServer detects the
// format automatically.
func (s *Server) SaveStateBinary(w io.Writer) error {
	s.mu.RLock()
	st := s.persistStateLocked()
	s.mu.RUnlock()
	return encodeStateBinary(w, st)
}

// persistStateLocked materializes the serializable snapshot struct.
// Callers hold s.mu (read or write). The result remains valid after the
// lock is released: the maps it references are copy-on-write (writers
// swap in fresh copies, never mutate published ones), the slices are
// append-only (their captured headers freeze a consistent prefix), the
// truth store is replace-on-write, and the clustering engine state is a
// deep copy — so compaction can encode it with no lock held.
func (s *Server) persistStateLocked() snapshotState {
	st := snapshotState{
		Version:      stateVersion,
		Alpha:        s.cfg.alpha,
		Gamma:        s.cfg.gamma,
		Epsilon:      s.cfg.epsilon,
		UserOrder:    s.userOrder,
		Tasks:        s.tasks,
		DomainOf:     s.domainOf,
		Pending:      s.pending,
		Truths:       s.truths,
		Day:          s.day,
		Observations: s.observations,
		Store:        s.store.State(),
		ItemToTask:   s.itemToTask,
	}
	for _, id := range s.userOrder {
		st.Users = append(st.Users, s.users[id])
	}
	if s.clusterer != nil {
		cs := s.clusterer.State()
		st.Cluster = &cs
		for _, v := range s.vectors {
			st.Vectors = append(st.Vectors, taskVectorState{Query: v.Query, Target: v.Target})
		}
	}
	return st
}

// countingWriter counts bytes for the snapshot-size metrics.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ErrBadState is returned when a snapshot cannot be restored.
var ErrBadState = errors.New("eta2: invalid server state")

// LoadServer restores a Server from a SaveState or SaveStateBinary
// snapshot (the format is detected from the first bytes). Pass
// WithEmbedder if the server should be able to create new described tasks
// after the restore; the snapshot's own task vectors are reused either
// way, so clustering state survives even across embedder retrains (new
// tasks are then placed with the NEW embedder's geometry — retrain with
// the same corpus and seed to keep distances consistent).
//
// WithDurability has no effect here: LoadServer restores exactly the
// supplied snapshot and nothing else. To restore from a durable data
// directory (snapshot + write-ahead-log replay), pass WithDurability to
// NewServer instead.
func LoadServer(r io.Reader, opts ...Option) (*Server, error) {
	st, err := decodeState(r)
	if err != nil {
		return nil, err
	}
	return restoreServer(st, opts...)
}

// decodeState parses and version-checks a snapshot in either codec. The
// binary codec's magic and a JSON object's '{' are disjoint, so one
// peeked byte picks the decoder; legacy JSON snapshots therefore keep
// loading forever.
func decodeState(r io.Reader) (snapshotState, error) {
	br := bufio.NewReader(r)
	first, err := br.Peek(1)
	if err != nil {
		return snapshotState{}, fmt.Errorf("eta2: load state: %w", err)
	}
	if first[0] == snapshotMagic[0] {
		return decodeStateBinary(br)
	}
	var st snapshotState
	dec := json.NewDecoder(br)
	if err := dec.Decode(&st); err != nil {
		return snapshotState{}, fmt.Errorf("eta2: load state: %w", err)
	}
	if st.Version != stateVersion {
		return snapshotState{}, fmt.Errorf("%w: snapshot has version %d, but this build supports version %d",
			ErrBadState, st.Version, stateVersion)
	}
	return st, nil
}

// restoreServer materializes a decoded snapshot. The snapshot's own
// alpha/gamma/epsilon are the base configuration; the caller's options
// are applied on top and win.
func restoreServer(st snapshotState, opts ...Option) (*Server, error) {
	allOpts := append([]Option{
		WithAlpha(st.Alpha),
		WithGamma(st.Gamma),
		WithEpsilon(st.Epsilon),
	}, opts...)
	cfg, err := buildConfig(allOpts...)
	if err != nil {
		return nil, err
	}
	// newServer, not NewServer: a WithDurability option in opts must not
	// recurse into recovery — openDurableServer drives this path itself.
	s, err := newServer(cfg)
	if err != nil {
		return nil, err
	}

	if len(st.Users) != len(st.UserOrder) {
		return nil, fmt.Errorf("%w: %d users, %d order entries", ErrBadState, len(st.Users), len(st.UserOrder))
	}
	// One batch, not per-user calls: AddUsers copies the user map per call
	// (copy-on-write for the lock-free readers), so per-user restores
	// would be quadratic in the user count.
	if err := s.AddUsers(st.Users...); err != nil {
		return nil, err
	}

	s.tasks = st.Tasks
	s.pending = st.Pending
	s.day = st.Day
	s.observations = st.Observations
	if st.DomainOf != nil {
		s.domainOf = st.DomainOf
	}
	if st.Truths != nil {
		s.truths = st.Truths
	}

	store, err := truth.RestoreStore(st.Store)
	if err != nil {
		return nil, fmt.Errorf("eta2: %w", err)
	}
	s.store = store

	if st.Cluster != nil {
		if len(st.Vectors) != st.Cluster.NItems || len(st.ItemToTask) != st.Cluster.NItems {
			return nil, fmt.Errorf("%w: %d vectors / %d item ids for %d clustered items",
				ErrBadState, len(st.Vectors), len(st.ItemToTask), st.Cluster.NItems)
		}
		s.vectors = make([]semantic.TaskVector, len(st.Vectors))
		for i, v := range st.Vectors {
			s.vectors[i] = semantic.TaskVector{
				Query:  embedding.Vector(v.Query),
				Target: embedding.Vector(v.Target),
			}
		}
		s.itemToTask = st.ItemToTask
		eng, err := cluster.Restore(*st.Cluster, func(a, b int) float64 {
			return semantic.Distance(s.vectors[a], s.vectors[b])
		})
		if err != nil {
			return nil, fmt.Errorf("eta2: %w", err)
		}
		s.clusterer = eng
		if s.vectorizer == nil && s.cfg.embedder != nil {
			s.vectorizer = semantic.NewVectorizer(s.cfg.embedder)
		}
	}
	// Not yet shared with other goroutines, so publishing without the lock
	// is safe; installs the restored state for the lock-free query surface.
	s.publishLocked()
	return s, nil
}
