package eta2

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLockFreeReadsDuringDurableStorm is the acceptance test for the
// lock-free read path. A writer drives durable mutation batches under the
// harshest policy — fsync-always with a 50ms emulated fsync, and
// CompactAt=1 so a background compaction cycle (whose WAL sync also pays
// the 50ms) runs after every closed step. Readers hammer the query
// surface the whole time and must:
//
//   - keep completing at full speed (the old design held the server lock
//     across compaction's fsyncs, capping readers at ~20 reads/sec here;
//     the lock-free path does ~10⁶/sec, so the ≥1000-in-500ms bound has
//     orders of magnitude of slack on either side),
//   - never observe a torn batch: users are only added in multiples of
//     userBatch, so NumUsers must always be divisible by it (readers see
//     the pre-batch or post-batch snapshot, nothing in between),
//   - never see time run backwards: Day is monotone per reader.
//
// Run with -race, this also proves the snapshot publication protocol has
// no data races between readers, the writer, and background compaction.
func TestLockFreeReadsDuringDurableStorm(t *testing.T) {
	dir := t.TempDir()
	pol := DurabilityPolicy{
		Fsync:      FsyncAlways,
		FsyncDelay: 50 * time.Millisecond,
		CompactAt:  1,
	}
	s, err := NewServer(WithDurability(dir, pol))
	if err != nil {
		t.Fatal(err)
	}
	const userBatch = 4
	if err := s.AddUsers(
		User{ID: 0, Capacity: 10}, User{ID: 1, Capacity: 10},
		User{ID: 2, Capacity: 10}, User{ID: 3, Capacity: 10},
	); err != nil {
		t.Fatal(err)
	}
	ids, err := s.CreateTasks(TaskSpec{DomainHint: 1, ProcTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitObservations(
		Observation{Task: ids[0], User: 0, Value: 2},
		Observation{Task: ids[0], User: 1, Value: 3},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CloseTimeStep(); err != nil {
		t.Fatal(err)
	}

	const window = 500 * time.Millisecond
	stop := make(chan struct{})
	errc := make(chan error, 8)
	var wg sync.WaitGroup

	// Writer: user batches, task creation, observations, step closes —
	// every one an fsync-always commit parked 50ms in the emulated fsync,
	// every close kicking off a background compaction.
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := UserID(100)
		for {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]User, userBatch)
			for j := range batch {
				batch[j] = User{ID: next, Capacity: 5}
				next++
			}
			if err := s.AddUsers(batch...); err != nil {
				errc <- fmt.Errorf("AddUsers: %w", err)
				return
			}
			tids, err := s.CreateTasks(TaskSpec{DomainHint: 1, ProcTime: 1})
			if err != nil {
				errc <- fmt.Errorf("CreateTasks: %w", err)
				return
			}
			if err := s.SubmitObservations(
				Observation{Task: tids[0], User: 0, Value: 1},
				Observation{Task: tids[0], User: 1, Value: 2},
			); err != nil {
				errc <- fmt.Errorf("SubmitObservations: %w", err)
				return
			}
			if _, err := s.CloseTimeStep(); err != nil {
				errc <- fmt.Errorf("CloseTimeStep: %w", err)
				return
			}
		}
	}()

	var totalReads atomic.Int64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			deadline := time.Now().Add(window)
			lastDay := -1
			var reads int64
			for time.Now().Before(deadline) {
				if n := s.NumUsers(); n%userBatch != 0 {
					errc <- fmt.Errorf("torn user batch: NumUsers = %d, not a multiple of %d", n, userBatch)
					return
				}
				if d := s.Day(); d < lastDay {
					errc <- fmt.Errorf("Day went backwards: %d after %d", d, lastDay)
					return
				} else {
					lastDay = d
				}
				if _, ok := s.Truth(ids[0]); !ok {
					errc <- fmt.Errorf("Truth(%d) vanished", ids[0])
					return
				}
				s.Expertise(0, ids[0])
				s.NumDomains()
				s.DurabilityStats()
				reads++
			}
			totalReads.Add(reads)
		}()
	}

	time.Sleep(window)
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// 4 readers × 500ms. Lock-free reads run at millions/sec (hundreds of
	// thousands under -race); reads serialized behind a lock held across a
	// 50ms fsync would manage ~40 in total.
	if n := totalReads.Load(); n < 4*1000 {
		t.Errorf("readers completed %d reads in %v — read path appears to block on writers", n, window)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("Close after storm: %v", err)
	}
	st := s.DurabilityStats()
	if st.Enabled {
		t.Error("durability still enabled after Close")
	}
}
